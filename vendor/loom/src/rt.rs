//! The model-checking runtime: a cooperative scheduler that serialises every
//! synchronisation operation of the threads under test and enumerates the
//! possible serialisations by depth-first search over a recorded choice path.
//!
//! # How an execution runs
//!
//! The thread calling [`crate::model`] is *thread 0*; shim [`crate::thread`]
//! spawns register further threads.  Every shim primitive (atomic op, mutex
//! lock/unlock, yield, spawn, join, finish) is an **operation**: the calling
//! thread first waits for its turn (`active == tid`), performs the operation
//! under the scheduler lock, then picks the next thread to run.  Code between
//! operations runs unscheduled, which is sound because all model-visible
//! shared state is behind the shim primitives (plain data inside a shim
//! `Mutex` is additionally protected by the real `std` mutex underneath).
//!
//! # How the search works
//!
//! Each decision — which thread performs the next operation, or which store a
//! relaxed load observes — appends a `(chosen, alternatives)` pair to a
//! **choice path**.  After an execution completes, the deepest pair with an
//! unexplored alternative is incremented and everything below it truncated;
//! the next execution replays the retained prefix and continues with default
//! choices.  Exploration ends when no pair has alternatives left.  Context
//! switches away from a runnable thread (preemptions) are bounded by
//! [`Builder::preemption_bound`], the CHESS-style cut that keeps the schedule
//! space tractable while catching most concurrency bugs at small bounds.
//!
//! # The memory model
//!
//! Every atomic keeps its full store history with vector-clock timestamps.
//! Read-modify-writes always observe the newest store (C11 atomicity — so
//! counters are exact under any `Ordering`).  A plain load may observe any
//! store not ruled out by coherence (nothing older than what the thread last
//! read or wrote there) or happens-before (nothing older than the newest
//! store whose clock the loading thread already covers); when several stores
//! qualify, the pick is a search choice.  An `Acquire` load observing a
//! `Release` store joins the storer's clock into the loader's — unless
//! [`Builder::weaken_release_to_relaxed`] is set, the test-only knob that
//! drops exactly that edge so tests can prove the model would catch a
//! missing `Release`/`Acquire` pair.  `SeqCst` is approximated as "always
//! observes the newest store" (a single total order over a *single* atomic;
//! cross-atomic SeqCst fences are not modelled — none are used here).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Token thrown (via `panic_any`) through threads of an aborted execution so
/// they unwind and drain; never surfaces to the user — the recorded failure
/// message is reported instead.
pub(crate) struct AbortToken;

/// Exploration parameters; `Builder::new().check(f)` is the long form of
/// [`crate::model`]`(f)`.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum number of context switches away from a still-runnable thread
    /// per execution (voluntary switches — yields, blocking, thread exit —
    /// are free).  Loom's CHESS heritage: most bugs surface by bound 2.
    pub preemption_bound: usize,
    /// Hard cap on explored executions; exceeding it panics rather than
    /// silently truncating the search.
    pub max_iterations: usize,
    /// Hard cap on operations within one execution; exceeding it is reported
    /// as a failure (a livelock the yield heuristics could not break).
    pub max_steps: usize,
    /// Test-only weakening knob: treat `Release` stores and `Acquire` loads
    /// as `Relaxed`, severing the clock join that publication patterns rely
    /// on.  Used to demonstrate the checker catches a weakened ordering.
    pub weaken_release_to_relaxed: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_iterations: 500_000,
            max_steps: 50_000,
            weaken_release_to_relaxed: false,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Explores every schedule of `f` within the bounds, panicking on the
    /// first failing execution with the failure and its choice path.
    pub fn check<F: Fn()>(&self, f: F) {
        self.check_counted(f);
    }

    /// [`check`](Builder::check), returning how many executions were
    /// explored (tests assert on this to pin exhaustiveness).
    pub fn check_counted<F: Fn()>(&self, f: F) -> usize {
        let mut path: Vec<Choice> = Vec::new();
        let mut executions = 0usize;
        loop {
            executions += 1;
            assert!(
                executions <= self.max_iterations,
                "loom shim: exceeded max_iterations ({}) — shrink the model \
                 or raise the bound",
                self.max_iterations
            );
            let sched = Arc::new(Scheduler::new(self.clone(), path));
            set_current(Some(Ctx {
                sched: Arc::clone(&sched),
                tid: 0,
            }));
            let outcome = catch_unwind(AssertUnwindSafe(&f));
            set_current(None);
            path = sched.finish_execution(outcome, executions);
            if !backtrack(&mut path) {
                return executions;
            }
        }
    }
}

/// Truncates `path` to the deepest choice with an unexplored alternative and
/// advances it; `false` means the search space is exhausted.
fn backtrack(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.alts {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// One recorded decision: `chosen` out of `alts` equally-legal alternatives.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    chosen: usize,
    alts: usize,
}

/// A vector clock over thread ids (threads are few; a dense vec suffices).
#[derive(Clone, Debug, Default)]
struct VClock(Vec<u32>);

impl VClock {
    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `self ≤ other` pointwise (missing components are zero).
    fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(tid, &c)| c <= other.0.get(tid).copied().unwrap_or(0))
    }
}

/// One store in an atomic's modification order.
#[derive(Clone, Debug)]
struct StoreEvent {
    value: u64,
    clock: VClock,
    /// Whether observing this store with an acquire load joins `clock` into
    /// the loader (i.e. the store was `Release` or stronger, unweakened).
    release: bool,
}

/// How many times in a row one thread may observe the *same* stale store
/// while a newer one exists.  Without this bound a spin loop re-reading a
/// stale flag is a legal execution of unbounded length and the DFS never
/// exhausts; with it, stale reads model C++'s "stores become visible in a
/// finite amount of time" progress guarantee.  Only schedules that differ
/// by futile extra spin iterations are pruned.
const STALE_REREAD_LIMIT: u32 = 2;

#[derive(Debug, Default)]
struct AtomicState {
    history: Vec<StoreEvent>,
    /// Per-thread newest history index read from or written — the coherence
    /// floor below which that thread may never read again.
    seen: Vec<usize>,
    /// Per-thread `(index, consecutive stale reads of it)`, enforcing
    /// [`STALE_REREAD_LIMIT`].
    reread: Vec<(usize, u32)>,
}

impl AtomicState {
    fn seen_floor(&self, tid: usize) -> usize {
        self.seen.get(tid).copied().unwrap_or(0)
    }

    fn mark_seen(&mut self, tid: usize, index: usize) {
        if self.seen.len() <= tid {
            self.seen.resize(tid + 1, 0);
        }
        self.seen[tid] = self.seen[tid].max(index);
    }

    /// Whether `tid` has already observed stale `index` as often in a row as
    /// the progress bound allows.
    fn reread_exhausted(&self, tid: usize, index: usize) -> bool {
        matches!(self.reread.get(tid), Some(&(i, n)) if i == index && n >= STALE_REREAD_LIMIT)
    }

    /// Records that `tid` observed `index`; `stale` when a newer store
    /// existed at read time (fresh reads reset the counter).
    fn record_read(&mut self, tid: usize, index: usize, stale: bool) {
        if self.reread.len() <= tid {
            self.reread.resize(tid + 1, (0, 0));
        }
        self.reread[tid] = match self.reread[tid] {
            _ if !stale => (index, 0),
            (i, n) if i == index => (index, n + 1),
            _ => (index, 1),
        };
    }
}

#[derive(Debug, Default)]
struct MutexState {
    held_by: Option<usize>,
    /// Join of the clocks of every unlocker so far: locking joins this into
    /// the locker, giving the release/acquire edge a real mutex provides.
    clock: VClock,
}

#[derive(Clone, Debug, PartialEq)]
enum BlockedOn {
    Mutex(usize),
    Join(Vec<usize>),
}

#[derive(Clone, Debug, PartialEq)]
enum Status {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

#[derive(Debug)]
struct ThreadInfo {
    status: Status,
    clock: VClock,
    /// Set by `yield_now`, cleared when the thread is next scheduled; the
    /// scheduler prefers un-yielded threads at yield points, which breaks
    /// spin-wait livelocks without starving the spinner.
    yielded: bool,
}

#[derive(Debug)]
struct SchedState {
    threads: Vec<ThreadInfo>,
    atomics: Vec<AtomicState>,
    mutexes: Vec<MutexState>,
    path: Vec<Choice>,
    /// Cursor into `path`: decisions below it replay, at/above extend.
    depth: usize,
    preemptions: usize,
    ops: usize,
    /// Thread whose turn it is to perform an operation.
    active: usize,
    abort: bool,
    failure: Option<String>,
}

/// The per-execution scheduler shared by all threads under test.
pub(crate) struct Scheduler {
    opts: Builder,
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// A thread's handle onto the scheduler of the execution it belongs to.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) tid: usize,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ctx(tid {})", self.tid)
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's model context, if it runs under a model.
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

fn lock_state(state: &Mutex<SchedState>) -> MutexGuard<'_, SchedState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    /// Condvar wait with a hang diagnostic: a scheduled thread should never
    /// wait minutes for its turn, so after a long timeout the full scheduler
    /// state is dumped to stderr (and the wait resumes — the test harness's
    /// own timeout then kills the run with the dump already printed).
    fn wait_state<'a>(
        &'a self,
        tid: usize,
        st: MutexGuard<'a, SchedState>,
    ) -> MutexGuard<'a, SchedState> {
        let (st, timeout) = self
            .cv
            .wait_timeout(st, std::time::Duration::from_secs(10))
            .unwrap_or_else(PoisonError::into_inner);
        if timeout.timed_out() {
            eprintln!(
                "loom shim: thread {tid} waited >10s for its turn; active={} abort={} ops={} statuses={:?}",
                st.active,
                st.abort,
                st.ops,
                st.threads
                    .iter()
                    .map(|t| format!("{:?}/y{}", t.status, u8::from(t.yielded)))
                    .collect::<Vec<_>>(),
            );
        }
        st
    }
}

impl Scheduler {
    fn new(opts: Builder, path: Vec<Choice>) -> Self {
        let mut root = ThreadInfo {
            status: Status::Runnable,
            clock: VClock::default(),
            yielded: false,
        };
        root.clock.tick(0);
        Scheduler {
            opts,
            state: Mutex::new(SchedState {
                threads: vec![root],
                atomics: Vec::new(),
                mutexes: Vec::new(),
                path,
                depth: 0,
                preemptions: 0,
                ops: 0,
                active: 0,
                abort: false,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    // ---- core turn-taking -------------------------------------------------

    /// Waits until it is `tid`'s turn to perform an operation; ticks its
    /// clock and counts the op.  Panics with [`AbortToken`] if the execution
    /// aborted while waiting.
    fn acquire_turn(&self, tid: usize) -> MutexGuard<'_, SchedState> {
        let mut st = lock_state(&self.state);
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.active == tid {
                break;
            }
            st = self.wait_state(tid, st);
        }
        st.ops += 1;
        if st.ops > self.opts.max_steps {
            let max = self.opts.max_steps;
            self.fail(
                &mut st,
                format!("execution exceeded {max} operations (livelock?)"),
            );
            drop(st);
            self.cv.notify_all();
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].clock.tick(tid);
        st
    }

    /// Ends `tid`'s operation: picks the next thread and wakes it.  Panics
    /// with [`AbortToken`] if picking failed (deadlock, nondeterminism).
    fn release_turn(&self, mut st: MutexGuard<'_, SchedState>, tid: usize, yielding: bool) {
        self.pick_next(&mut st, tid, yielding);
        let abort = st.abort;
        drop(st);
        self.cv.notify_all();
        if abort {
            std::panic::panic_any(AbortToken);
        }
    }

    /// [`release_turn`](Self::release_turn) for contexts that must never
    /// panic (guard drops): failures are recorded, not thrown — the thread
    /// hits the abort at its next operation instead.
    fn release_turn_quiet(&self, mut st: MutexGuard<'_, SchedState>, tid: usize) {
        if !st.abort {
            self.pick_next(&mut st, tid, false);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn fail(&self, st: &mut SchedState, msg: String) {
        if st.failure.is_none() {
            let path: Vec<String> = st.path[..st.depth.min(st.path.len())]
                .iter()
                .map(|c| format!("{}/{}", c.chosen, c.alts))
                .collect();
            st.failure = Some(format!("{msg}\n  choice path: [{}]", path.join(" ")));
        }
        st.abort = true;
    }

    /// Consumes one decision with `alts` alternatives: replays the recorded
    /// pick below the exploration frontier, extends the path with the
    /// default (0) at it.
    fn choose(&self, st: &mut SchedState, alts: usize) -> usize {
        if st.abort {
            return 0;
        }
        let d = st.depth;
        st.depth += 1;
        if d < st.path.len() {
            let c = st.path[d];
            if c.alts != alts {
                self.fail(
                    st,
                    format!(
                        "nondeterministic execution: decision {d} has {alts} \
                         alternatives, a previous run had {}",
                        c.alts
                    ),
                );
                return 0;
            }
            c.chosen.min(alts - 1)
        } else {
            st.path.push(Choice { chosen: 0, alts });
            0
        }
    }

    fn eligible(st: &SchedState, tid: usize) -> bool {
        match &st.threads[tid].status {
            Status::Runnable => true,
            Status::Finished => false,
            Status::Blocked(BlockedOn::Mutex(mid)) => st.mutexes[*mid].held_by.is_none(),
            Status::Blocked(BlockedOn::Join(tids)) => tids
                .iter()
                .all(|&t| st.threads[t].status == Status::Finished),
        }
    }

    /// Picks the next active thread.  Candidate order puts the current
    /// thread first (continuing costs no preemption), then the rest by id;
    /// at a yield the current thread is excluded and un-yielded peers are
    /// preferred.  Switching away from a runnable, non-yielding thread
    /// consumes preemption budget; at budget zero the current thread is the
    /// only candidate, which is the CHESS bound's pruning.
    fn pick_next(&self, st: &mut SchedState, current: usize, yielding: bool) {
        if st.abort {
            return;
        }
        let current_eligible =
            st.threads[current].status == Status::Runnable && Self::eligible(st, current);
        let others: Vec<usize> = (0..st.threads.len())
            .filter(|&t| t != current && Self::eligible(st, t))
            .collect();
        let candidates: Vec<usize> = if yielding {
            st.threads[current].yielded = true;
            let fresh: Vec<usize> = others
                .iter()
                .copied()
                .filter(|&t| !st.threads[t].yielded)
                .collect();
            if !fresh.is_empty() {
                fresh
            } else if !others.is_empty() {
                others
            } else {
                vec![current]
            }
        } else if current_eligible {
            if st.preemptions >= self.opts.preemption_bound {
                vec![current]
            } else {
                let mut c = vec![current];
                c.extend(others);
                c
            }
        } else {
            others
        };
        if candidates.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.active = usize::MAX;
            } else {
                self.fail(st, "deadlock: no eligible thread".to_owned());
            }
            return;
        }
        let k = self.choose(st, candidates.len());
        if st.abort {
            return;
        }
        let next = candidates[k];
        if !yielding && current_eligible && next != current {
            st.preemptions += 1;
        }
        st.threads[next].status = Status::Runnable;
        st.threads[next].yielded = false;
        st.active = next;
    }

    // ---- object registration ---------------------------------------------

    pub(crate) fn register_atomic(&self, tid: usize, init: u64) -> usize {
        let mut st = self.acquire_turn(tid);
        let clock = st.threads[tid].clock.clone();
        st.atomics.push(AtomicState {
            // The initial value behaves like a store by the creating thread:
            // anyone who sees the atomic exists (happens-after creation) may
            // not read anything older.
            history: vec![StoreEvent {
                value: init,
                clock,
                release: false,
            }],
            seen: Vec::new(),
            reread: Vec::new(),
        });
        let id = st.atomics.len() - 1;
        self.release_turn(st, tid, false);
        id
    }

    pub(crate) fn register_mutex(&self, tid: usize) -> usize {
        let mut st = self.acquire_turn(tid);
        let clock = st.threads[tid].clock.clone();
        st.mutexes.push(MutexState {
            held_by: None,
            // Creation happens-before every lock.
            clock,
        });
        let id = st.mutexes.len() - 1;
        self.release_turn(st, tid, false);
        id
    }

    // ---- atomics ----------------------------------------------------------

    fn is_release(&self, ord: Ordering) -> bool {
        match ord {
            Ordering::Release | Ordering::AcqRel => !self.opts.weaken_release_to_relaxed,
            Ordering::SeqCst => true,
            _ => false,
        }
    }

    fn is_acquire(&self, ord: Ordering) -> bool {
        match ord {
            Ordering::Acquire | Ordering::AcqRel => !self.opts.weaken_release_to_relaxed,
            Ordering::SeqCst => true,
            _ => false,
        }
    }

    pub(crate) fn atomic_store(&self, tid: usize, id: usize, value: u64, ord: Ordering) {
        let release = self.is_release(ord);
        let mut st = self.acquire_turn(tid);
        let clock = st.threads[tid].clock.clone();
        let atomic = &mut st.atomics[id];
        atomic.history.push(StoreEvent {
            value,
            clock,
            release,
        });
        let newest = atomic.history.len() - 1;
        atomic.mark_seen(tid, newest);
        self.release_turn(st, tid, false);
    }

    pub(crate) fn atomic_load(&self, tid: usize, id: usize, ord: Ordering) -> u64 {
        let acquire = self.is_acquire(ord);
        let mut st = self.acquire_turn(tid);
        let newest = st.atomics[id].history.len() - 1;
        let index = if matches!(ord, Ordering::SeqCst) {
            // Approximation: SeqCst loads observe the newest store (the
            // single-variable total order; cross-atomic SeqCst fencing is
            // not modelled).
            newest
        } else {
            // Coherence floor: nothing older than this thread last saw
            // there, nor older than the newest store it happens-after.
            let mut floor = st.atomics[id].seen_floor(tid);
            let thread_clock = st.threads[tid].clock.clone();
            for (i, store) in st.atomics[id].history.iter().enumerate().rev() {
                if store.clock.le(&thread_clock) {
                    floor = floor.max(i);
                    break;
                }
            }
            // Newest-first so the default choice (0) matches what a real
            // execution almost always observes; older stores are the
            // explored staleness.  Stale indices this thread has already
            // re-read `STALE_REREAD_LIMIT` times in a row are dropped —
            // without that progress bound a spin loop re-reading a stale
            // flag would make the schedule space infinite.
            let candidates: Vec<usize> = (floor..=newest)
                .rev()
                .filter(|&i| i == newest || !st.atomics[id].reread_exhausted(tid, i))
                .collect();
            candidates[self.choose(&mut st, candidates.len())]
        };
        st.atomics[id].record_read(tid, index, index < newest);
        if st.abort {
            drop(st);
            self.cv.notify_all();
            std::panic::panic_any(AbortToken);
        }
        let value = st.atomics[id].history[index].value;
        let release = st.atomics[id].history[index].release;
        if acquire && release {
            let store_clock = st.atomics[id].history[index].clock.clone();
            st.threads[tid].clock.join(&store_clock);
        }
        st.atomics[id].mark_seen(tid, index);
        self.release_turn(st, tid, false);
        value
    }

    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        id: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let acquire = self.is_acquire(ord);
        let release = self.is_release(ord);
        let mut st = self.acquire_turn(tid);
        // C11 atomicity: a read-modify-write always observes the newest
        // store in the modification order, whatever its ordering — this is
        // why `Relaxed` counters are exact.
        let newest = st.atomics[id].history.len() - 1;
        let prev = st.atomics[id].history[newest].value;
        if acquire && st.atomics[id].history[newest].release {
            let store_clock = st.atomics[id].history[newest].clock.clone();
            st.threads[tid].clock.join(&store_clock);
        }
        let clock = st.threads[tid].clock.clone();
        let atomic = &mut st.atomics[id];
        atomic.history.push(StoreEvent {
            value: f(prev),
            clock,
            release,
        });
        let newest = atomic.history.len() - 1;
        atomic.mark_seen(tid, newest);
        self.release_turn(st, tid, false);
        prev
    }

    // ---- mutexes ----------------------------------------------------------

    pub(crate) fn mutex_lock(&self, tid: usize, id: usize) {
        let mut st = self.acquire_turn(tid);
        loop {
            if st.mutexes[id].held_by.is_none() {
                st.mutexes[id].held_by = Some(tid);
                let mutex_clock = st.mutexes[id].clock.clone();
                // The real release/acquire edge a mutex provides: the locker
                // happens-after every previous unlocker.
                st.threads[tid].clock.join(&mutex_clock);
                break;
            }
            st.threads[tid].status = Status::Blocked(BlockedOn::Mutex(id));
            self.pick_next(&mut st, tid, false);
            self.cv.notify_all();
            loop {
                if st.abort {
                    drop(st);
                    std::panic::panic_any(AbortToken);
                }
                if st.active == tid {
                    break;
                }
                st = self.wait_state(tid, st);
            }
        }
        self.release_turn(st, tid, false);
    }

    /// Never panics: called from guard drops, possibly mid-unwind or after
    /// an abort.  The unlock is a scheduled operation like any other (it
    /// waits for the thread's turn) — an unscheduled unlock would reassign
    /// `active` behind the scheduled thread's back and both corrupt the
    /// turn protocol and make replays nondeterministic.  During an abort
    /// the turn-taking is suspended and only the bookkeeping runs.
    pub(crate) fn mutex_unlock(&self, tid: usize, id: usize) {
        let mut st = lock_state(&self.state);
        loop {
            if st.abort || st.active == tid {
                break;
            }
            st = self.wait_state(tid, st);
        }
        if !st.abort {
            st.ops += 1;
            st.threads[tid].clock.tick(tid);
        }
        let thread_clock = st.threads[tid].clock.clone();
        st.mutexes[id].clock.join(&thread_clock);
        st.mutexes[id].held_by = None;
        self.release_turn_quiet(st, tid);
    }

    // ---- threads ----------------------------------------------------------

    pub(crate) fn yield_now(&self, tid: usize) {
        let st = self.acquire_turn(tid);
        self.release_turn(st, tid, true);
    }

    /// Registers a child thread; the child happens-after the spawn point.
    pub(crate) fn spawn_thread(&self, parent: usize) -> usize {
        let mut st = self.acquire_turn(parent);
        let mut clock = st.threads[parent].clock.clone();
        let tid = st.threads.len();
        clock.tick(tid);
        st.threads.push(ThreadInfo {
            status: Status::Runnable,
            clock,
            yielded: false,
        });
        self.release_turn(st, parent, false);
        tid
    }

    /// A child's last scheduled operation: mark finished so joiners unblock.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = self.acquire_turn(tid);
        st.threads[tid].status = Status::Finished;
        self.release_turn(st, tid, false);
    }

    /// Blocks `tid` until every thread in `children` finished, then joins
    /// their clocks (join happens-after everything the children did).
    pub(crate) fn join_threads(&self, tid: usize, children: &[usize]) {
        if children.is_empty() {
            return;
        }
        let mut st = self.acquire_turn(tid);
        loop {
            if children
                .iter()
                .all(|&c| st.threads[c].status == Status::Finished)
            {
                for &c in children {
                    let child_clock = st.threads[c].clock.clone();
                    st.threads[tid].clock.join(&child_clock);
                }
                break;
            }
            st.threads[tid].status = Status::Blocked(BlockedOn::Join(children.to_vec()));
            self.pick_next(&mut st, tid, false);
            self.cv.notify_all();
            loop {
                if st.abort {
                    drop(st);
                    std::panic::panic_any(AbortToken);
                }
                if st.active == tid {
                    break;
                }
                st = self.wait_state(tid, st);
            }
        }
        self.release_turn(st, tid, false);
    }

    /// A child that unwound out of its closure: record the panic (unless it
    /// is the abort token of an already-failing execution), mark finished,
    /// hand the turn on.  Never panics — the OS thread is exiting.
    pub(crate) fn emergency_exit(&self, tid: usize, payload: Box<dyn std::any::Any + Send>) {
        let mut st = lock_state(&self.state);
        if !payload.is::<AbortToken>() {
            let msg = panic_message(payload.as_ref());
            self.fail(&mut st, format!("thread {tid} panicked: {msg}"));
        }
        st.threads[tid].status = Status::Finished;
        if st.active == tid {
            st.active = usize::MAX;
        }
        if !st.abort {
            self.pick_next(&mut st, tid, false);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Called by the driver after the model closure returns on thread 0:
    /// folds the closure's outcome into the recorded failure, drains any
    /// still-running threads, panics if the execution failed, and returns
    /// the choice path for backtracking.
    fn finish_execution(
        &self,
        outcome: Result<(), Box<dyn std::any::Any + Send>>,
        executions: usize,
    ) -> Vec<Choice> {
        let mut st = lock_state(&self.state);
        st.threads[0].status = Status::Finished;
        match outcome {
            Ok(()) => {
                let leaked: Vec<usize> = (1..st.threads.len())
                    .filter(|&t| st.threads[t].status != Status::Finished)
                    .collect();
                if !leaked.is_empty() {
                    self.fail(
                        &mut st,
                        format!("threads {leaked:?} were never joined before the model closure returned"),
                    );
                }
            }
            Err(payload) => {
                if !payload.is::<AbortToken>() {
                    let msg = panic_message(payload.as_ref());
                    self.fail(&mut st, format!("model closure panicked: {msg}"));
                }
                // A failure must already be recorded when the token reaches
                // thread 0; nothing to add otherwise.
            }
        }
        // Drain: every spawned OS thread must observe the abort (or have
        // finished) before this scheduler is dropped.
        if st.threads.iter().any(|t| t.status != Status::Finished) {
            st.abort = true;
            self.cv.notify_all();
            while st.threads.iter().any(|t| t.status != Status::Finished) {
                self.cv.notify_all();
                st = self.wait_state(0, st);
            }
        }
        if let Some(failure) = st.failure.take() {
            let ops = st.ops;
            drop(st);
            panic!(
                "loom shim: model failed on execution {executions} after {ops} operations: {failure}"
            );
        }
        std::mem::take(&mut st.path)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}
