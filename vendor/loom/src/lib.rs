//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker.
//!
//! The build environment has no registry access, so this crate hand-rolls
//! the slice of loom this workspace needs: shimmed [`sync::Mutex`],
//! [`sync::atomic`] types and [`thread`] primitives whose every operation is
//! mediated by a cooperative scheduler, plus [`model`]/[`Builder::check`]
//! which enumerate the possible interleavings by depth-first search with a
//! bounded number of preemptions and report the first failing schedule.
//!
//! Outside a [`model`] closure every type passes straight through to `std`,
//! so code ported onto the shim behaves identically in regular builds and
//! tests.  See `README.md` for the scope of the model (what it does and
//! does not prove) and the swap path back to the real crates-io loom.
//!
//! # Example
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//!
//! // Two racing read-modify-writes can never lose an update: the checker
//! // proves it by exhausting every interleaving.
//! loom::model(|| {
//!     let counter = std::sync::Arc::new(AtomicUsize::new(0));
//!     loom::thread::scope(|scope| {
//!         for _ in 0..2 {
//!             let counter = std::sync::Arc::clone(&counter);
//!             scope.spawn(move || {
//!                 counter.fetch_add(1, Ordering::Relaxed);
//!             });
//!         }
//!     });
//!     assert_eq!(counter.load(Ordering::Relaxed), 2);
//! });
//! ```

mod rt;
pub mod sync;
pub mod thread;

pub use rt::Builder;

/// Explores every schedule of `f` (within the default [`Builder`] bounds),
/// panicking with the failing schedule if any execution panics, deadlocks,
/// or livelocks.  `f` runs once per explored interleaving; create all sync
/// objects inside it.
pub fn model<F: Fn()>(f: F) {
    Builder::new().check(f);
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::sync::Arc;

    use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use crate::sync::Mutex;
    use crate::Builder;

    #[test]
    fn passthrough_outside_model_matches_std() {
        let flag = AtomicBool::new(false);
        flag.store(true, Ordering::SeqCst);
        assert!(flag.load(Ordering::SeqCst));
        let n = AtomicU64::new(5);
        assert_eq!(n.fetch_add(2, Ordering::Relaxed), 5);
        assert_eq!(n.fetch_sub(1, Ordering::Relaxed), 7);
        assert_eq!(n.load(Ordering::Acquire), 6);
        let m = Mutex::new(3usize);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 4);
        assert_eq!(m.into_inner().unwrap(), 4);
    }

    #[test]
    fn racing_rmws_never_lose_updates() {
        // RMW atomicity holds at Relaxed: the final count is exact in every
        // interleaving.
        crate::model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            crate::thread::scope(|scope| {
                for _ in 0..2 {
                    let counter = Arc::clone(&counter);
                    scope.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    #[should_panic(expected = "model failed")]
    fn load_then_store_race_is_caught() {
        // The classic lost update: unsynchronised load-then-store pairs.
        // Some interleaving ends at 1, and the checker must find it.
        crate::model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            crate::thread::scope(|scope| {
                for _ in 0..2 {
                    let counter = Arc::clone(&counter);
                    scope.spawn(move || {
                        let seen = counter.load(Ordering::SeqCst);
                        counter.store(seen + 1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn release_acquire_publication_holds_exhaustively() {
        // The pattern `steal`/`brute_force` rely on: payload written before
        // a Release flag must be visible to an Acquire reader of the flag.
        crate::model(|| {
            let payload = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            crate::thread::scope(|scope| {
                {
                    let payload = Arc::clone(&payload);
                    let flag = Arc::clone(&flag);
                    scope.spawn(move || {
                        payload.store(42, Ordering::Relaxed);
                        flag.store(true, Ordering::Release);
                    });
                }
                scope.spawn(move || {
                    if flag.load(Ordering::Acquire) {
                        assert_eq!(payload.load(Ordering::Relaxed), 42);
                    }
                });
            });
        });
    }

    #[test]
    #[should_panic(expected = "model failed")]
    fn weakened_release_acquire_is_caught() {
        // The same protocol under the test-only weakening knob: with the
        // Release/Acquire edge severed the reader may observe the flag but
        // a stale payload, and the checker must find that schedule.
        let mut builder = Builder::new();
        builder.weaken_release_to_relaxed = true;
        builder.check(|| {
            let payload = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            crate::thread::scope(|scope| {
                {
                    let payload = Arc::clone(&payload);
                    let flag = Arc::clone(&flag);
                    scope.spawn(move || {
                        payload.store(42, Ordering::Relaxed);
                        flag.store(true, Ordering::Release);
                    });
                }
                scope.spawn(move || {
                    if flag.load(Ordering::Acquire) {
                        assert_eq!(payload.load(Ordering::Relaxed), 42);
                    }
                });
            });
        });
    }

    #[test]
    fn relaxed_loads_observe_stale_values() {
        // With no synchronising edge, a Relaxed reader must be able to see
        // both the old and the new value across the exploration — stale
        // reads are really explored, not just theoretically possible.
        let seen = std::sync::Mutex::new(HashSet::new());
        crate::model(|| {
            let cell = Arc::new(AtomicU64::new(0));
            let observed = crate::thread::scope(|scope| {
                {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || cell.store(1, Ordering::Relaxed));
                }
                let reader = {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || cell.load(Ordering::Relaxed))
                };
                reader.join().expect("reader thread cannot panic")
            });
            seen.lock()
                .expect("collector mutex never poisoned")
                .insert(observed);
        });
        let seen = seen.into_inner().expect("collector mutex never poisoned");
        assert_eq!(seen, HashSet::from([0, 1]));
    }

    #[test]
    fn mutex_exclusion_and_visibility() {
        // Increments under a mutex are never lost, and the unlock/lock edge
        // publishes plain (non-atomic) data.
        crate::model(|| {
            let counter = Arc::new(Mutex::new(0u64));
            crate::thread::scope(|scope| {
                for _ in 0..2 {
                    let counter = Arc::clone(&counter);
                    scope.spawn(move || {
                        *counter.lock().expect("model mutex never poisoned") += 1;
                    });
                }
            });
            assert_eq!(*counter.lock().expect("model mutex never poisoned"), 2);
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn abba_deadlock_is_caught() {
        crate::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            crate::thread::scope(|scope| {
                {
                    let a = Arc::clone(&a);
                    let b = Arc::clone(&b);
                    scope.spawn(move || {
                        let _a = a.lock().expect("model mutex never poisoned");
                        let _b = b.lock().expect("model mutex never poisoned");
                    });
                }
                scope.spawn(move || {
                    let _b = b.lock().expect("model mutex never poisoned");
                    let _a = a.lock().expect("model mutex never poisoned");
                });
            });
        });
    }

    #[test]
    fn spin_wait_on_flag_terminates() {
        // The yield heuristics must keep a spin loop explorable: the spinner
        // yields, the scheduler prefers the un-yielded writer, the flag
        // flips, the loop exits — in every explored schedule.
        crate::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            crate::thread::scope(|scope| {
                {
                    let flag = Arc::clone(&flag);
                    scope.spawn(move || flag.store(true, Ordering::Release));
                }
                scope.spawn(move || {
                    while !flag.load(Ordering::Acquire) {
                        crate::thread::yield_now();
                    }
                });
            });
        });
    }

    #[test]
    fn exploration_visits_multiple_schedules() {
        // Sanity-pin that the DFS actually branches: two racing writers
        // need more than one execution to cover.
        let executions = Builder::new().check_counted(|| {
            let cell = Arc::new(AtomicU64::new(0));
            crate::thread::scope(|scope| {
                for value in 1..=2 {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || cell.store(value, Ordering::Relaxed));
                }
            });
        });
        assert!(
            executions > 1,
            "two racing stores explored only {executions} schedule(s)"
        );
    }

    #[test]
    fn plain_spawn_and_join_work_under_model() {
        crate::model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let child = {
                let counter = Arc::clone(&counter);
                crate::thread::spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    7u32
                })
            };
            assert_eq!(child.join().expect("child cannot panic"), 7);
            // join happens-after the child: the increment must be visible.
            assert_eq!(counter.load(Ordering::Relaxed), 1);
        });
    }
}
