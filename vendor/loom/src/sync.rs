//! Shimmed `std::sync` types: a [`Mutex`] and the atomics the workspace
//! uses.  Outside a model they delegate straight to `std`; inside one, every
//! operation is scheduled and its memory effects tracked by [`crate::rt`].
//!
//! A sync object must be created in the same mode it is used in: creating it
//! outside a model closure and touching it inside (or vice versa) panics
//! with an explanatory message, because the runtime can only explore
//! operations it mediates.

use crate::rt::{self, Ctx};

/// `std::sync::LockResult`, re-exported so facade signatures line up.
pub use std::sync::LockResult;
pub use std::sync::PoisonError;

/// `std::sync::Arc`, re-exported unmodified: reference counting has no
/// scheduler-visible effects beyond the release/acquire pair in `Drop`,
/// which this simplified shim does not model (real loom does).
pub use std::sync::Arc;

/// Atomic types with scheduler-mediated semantics under a model.
pub mod atomic {
    use super::mode_mismatch;
    use crate::rt::{self, Ctx};
    pub use std::sync::atomic::Ordering;

    enum Mode<S> {
        /// Created outside any model: a real `std` atomic.
        Std(S),
        /// Created under a model: an id into the runtime's store histories.
        /// Operations resolve the *calling* thread's context at call time —
        /// the registering thread's identity is irrelevant after creation.
        Model { id: usize },
    }

    /// The calling thread's model context; panics if a model-mode atomic is
    /// touched outside the model closure.
    fn caller() -> Ctx {
        rt::current().unwrap_or_else(|| {
            panic!(
                "loom shim: this atomic was created inside a model closure \
                 but used outside one; model-mode objects are only usable \
                 while their model runs"
            )
        })
    }

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $prim:ty, $to_u64:expr, $from_u64:expr) => {
            /// Shimmed atomic: `std` passthrough outside a model, scheduled
            /// and history-tracked inside one.
            pub struct $name(Mode<$std>);

            impl $name {
                /// Creates the atomic in the calling context's mode.
                pub fn new(value: $prim) -> Self {
                    match rt::current() {
                        None => $name(Mode::Std(<$std>::new(value))),
                        Some(ctx) => {
                            let id = ctx.sched.register_atomic(ctx.tid, $to_u64(value));
                            $name(Mode::Model { id })
                        }
                    }
                }

                /// Loads the value; under a model the observed store is a
                /// search choice within coherence and happens-before limits.
                pub fn load(&self, ord: Ordering) -> $prim {
                    match &self.0 {
                        Mode::Std(a) => {
                            mode_mismatch(rt::current().is_none(), "atomic");
                            a.load(ord)
                        }
                        Mode::Model { id } => {
                            let cur = caller();
                            $from_u64(cur.sched.atomic_load(cur.tid, *id, ord))
                        }
                    }
                }

                /// Stores a value.
                pub fn store(&self, value: $prim, ord: Ordering) {
                    match &self.0 {
                        Mode::Std(a) => {
                            mode_mismatch(rt::current().is_none(), "atomic");
                            a.store(value, ord);
                        }
                        Mode::Model { id } => {
                            let cur = caller();
                            cur.sched.atomic_store(cur.tid, *id, $to_u64(value), ord);
                        }
                    }
                }

                /// Atomically replaces the value, returning the previous one.
                pub fn swap(&self, value: $prim, ord: Ordering) -> $prim {
                    match &self.0 {
                        Mode::Std(a) => {
                            mode_mismatch(rt::current().is_none(), "atomic");
                            a.swap(value, ord)
                        }
                        Mode::Model { id } => {
                            let cur = caller();
                            $from_u64(cur.sched.atomic_rmw(cur.tid, *id, ord, |_| $to_u64(value)))
                        }
                    }
                }
            }
        };
    }

    macro_rules! shim_atomic_arith {
        ($name:ident, $prim:ty, $to_u64:expr, $from_u64:expr) => {
            impl $name {
                /// Atomically adds, returning the previous value.  Always
                /// observes the newest store (RMW atomicity), so counters
                /// stay exact even at `Relaxed`.
                pub fn fetch_add(&self, value: $prim, ord: Ordering) -> $prim {
                    match &self.0 {
                        Mode::Std(a) => {
                            mode_mismatch(rt::current().is_none(), "atomic");
                            a.fetch_add(value, ord)
                        }
                        Mode::Model { id } => {
                            let cur = caller();
                            $from_u64(cur.sched.atomic_rmw(cur.tid, *id, ord, |prev| {
                                $to_u64($from_u64(prev).wrapping_add(value))
                            }))
                        }
                    }
                }

                /// Atomically subtracts, returning the previous value.
                pub fn fetch_sub(&self, value: $prim, ord: Ordering) -> $prim {
                    match &self.0 {
                        Mode::Std(a) => {
                            mode_mismatch(rt::current().is_none(), "atomic");
                            a.fetch_sub(value, ord)
                        }
                        Mode::Model { id } => {
                            let cur = caller();
                            $from_u64(cur.sched.atomic_rmw(cur.tid, *id, ord, |prev| {
                                $to_u64($from_u64(prev).wrapping_sub(value))
                            }))
                        }
                    }
                }
            }
        };
    }

    shim_atomic!(
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool,
        u64::from,
        |v: u64| v != 0
    );
    shim_atomic!(
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        std::convert::identity,
        std::convert::identity
    );
    shim_atomic!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        |v: usize| v as u64,
        |v: u64| v as usize
    );
    shim_atomic_arith!(
        AtomicU64,
        u64,
        std::convert::identity,
        std::convert::identity
    );
    shim_atomic_arith!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("AtomicBool(..)")
        }
    }
    impl std::fmt::Debug for AtomicU64 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("AtomicU64(..)")
        }
    }
    impl std::fmt::Debug for AtomicUsize {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("AtomicUsize(..)")
        }
    }
}

/// Panics when a sync object created in one mode is used in the other.
fn mode_mismatch(ok: bool, what: &str) {
    assert!(
        ok,
        "loom shim: this {what} was created outside the model closure but \
         used inside one (or vice versa); create every sync object inside \
         the closure so the runtime can mediate it"
    );
}

/// Shimmed `std::sync::Mutex`: real exclusion (a `std` mutex underneath)
/// plus scheduled lock/unlock and happens-before tracking under a model.
#[derive(Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    model: Option<(Ctx, usize)>,
}

impl<T> Mutex<T> {
    /// Creates the mutex in the calling context's mode.
    pub fn new(value: T) -> Self {
        let model = rt::current().map(|ctx| {
            let id = ctx.sched.register_mutex(ctx.tid);
            (ctx, id)
        });
        Mutex {
            inner: std::sync::Mutex::new(value),
            model,
        }
    }

    /// Acquires the mutex; under a model the blocking is mediated by the
    /// scheduler (the inner `std` lock is then always uncontended).  Poison
    /// semantics mirror `std`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let release = match (&self.model, rt::current()) {
            (None, None) => None,
            (Some((_, id)), Some(cur)) => {
                cur.sched.mutex_lock(cur.tid, *id);
                // Unlock bookkeeping is attributed to the locking thread: a
                // guard never migrates threads, so the locker unlocks.
                Some((cur, *id))
            }
            _ => {
                mode_mismatch(false, "mutex");
                unreachable!("mode_mismatch panics on mixed modes")
            }
        };
        match self.inner.lock() {
            Ok(std) => Ok(MutexGuard {
                std: Some(std),
                release,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                std: Some(poisoned.into_inner()),
                release,
            })),
        }
    }

    /// Consumes the mutex, returning the inner value (poison mirrored from
    /// `std`).
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

/// Guard for [`Mutex`]; dropping it releases the real lock first and then
/// reports the release to the scheduler (never panicking, even mid-abort).
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    std: Option<std::sync::MutexGuard<'a, T>>,
    release: Option<(Ctx, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.std
            .as_deref()
            // invariant: `std` is Some until drop — set at construction,
            // taken only in `Drop`.
            .expect("guard accessed after drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std
            .as_deref_mut()
            // invariant: `std` is Some until drop — set at construction,
            // taken only in `Drop`.
            .expect("guard accessed after drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before telling the scheduler: the next
        // thread it wakes must find the std mutex free.
        drop(self.std.take());
        if let Some((ctx, id)) = self.release.take() {
            ctx.sched.mutex_unlock(ctx.tid, id);
        }
    }
}
