//! Shimmed `std::thread`: `scope`/`spawn`/`yield_now` that register their
//! threads with the model runtime when one is active, and pass through to
//! `std` otherwise.
//!
//! Model-mode threads are real OS threads — the scheduler merely serialises
//! their synchronisation operations — so `scope` is built on
//! [`std::thread::scope`] (real loom has no `scope`; see the crate README).
//! Under a model, our scope performs a *scheduled* join of every spawned
//! child before `std`'s implicit join, so the join-all is part of the
//! explored schedule and `std`'s own join never blocks a scheduled thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::rt::{self, Ctx};

pub use std::thread::available_parallelism;

/// Runs `f` as a registered model thread: enter the context, run, report the
/// exit (normal or panicking) to the scheduler.  Returns `None` when the
/// execution aborted mid-thread.
fn run_registered<T>(ctx: Ctx, f: impl FnOnce() -> T) -> Option<T> {
    if std::env::var_os("LOOM_SHIM_TRACE").is_some() {
        eprintln!("loom trace: thread {} OS-started", ctx.tid);
    }
    rt::set_current(Some(ctx.clone()));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let value = f();
        ctx.sched.finish_thread(ctx.tid);
        value
    }));
    rt::set_current(None);
    if std::env::var_os("LOOM_SHIM_TRACE").is_some() {
        eprintln!(
            "loom trace: thread {} OS-exiting (panicked: {})",
            ctx.tid,
            outcome.is_err()
        );
    }
    match outcome {
        Ok(value) => Some(value),
        Err(payload) => {
            ctx.sched.emergency_exit(ctx.tid, payload);
            None
        }
    }
}

/// Yields the current thread's turn; under a model the scheduler must hand
/// the turn to a not-yet-yielded peer when one is runnable, which is what
/// makes spin-wait loops (`yield` until a flag flips) explorable without
/// livelocking the search.
pub fn yield_now() {
    match rt::current() {
        None => std::thread::yield_now(),
        Some(ctx) => ctx.sched.yield_now(ctx.tid),
    }
}

/// Handle to a [`spawn`]ed thread.
pub struct JoinHandle<T> {
    std: std::thread::JoinHandle<Option<T>>,
    child: Option<(Ctx, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result; joining is a
    /// scheduled operation under a model.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((ctx, tid)) = &self.child {
            ctx.sched.join_threads(ctx.tid, &[*tid]);
        }
        self.std.join().map(|value| {
            // invariant: a registered thread only returns None when the
            // execution aborted, and then `join_threads` has already
            // panicked this thread with the abort token.
            value.expect("joined a thread of an aborted execution")
        })
    }
}

/// Spawns a thread; registered with the model runtime when one is active.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle {
            std: std::thread::spawn(move || Some(f())),
            child: None,
        },
        Some(ctx) => {
            let tid = ctx.sched.spawn_thread(ctx.tid);
            let child = Ctx {
                sched: Arc::clone(&ctx.sched),
                tid,
            };
            JoinHandle {
                std: std::thread::spawn(move || run_registered(child, f)),
                child: Some((ctx, tid)),
            }
        }
    }
}

/// Scope for [`scope`]d spawns; mirrors [`std::thread::Scope`].
pub struct Scope<'scope, 'env> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<Ctx>,
    children: std::cell::RefCell<Vec<usize>>,
}

/// Handle to a scoped thread; dropping it detaches (the scope still joins).
pub struct ScopedJoinHandle<'scope, T> {
    std: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    child: Option<(Ctx, usize)>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result; joining is a
    /// scheduled operation under a model.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((ctx, tid)) = &self.child {
            ctx.sched.join_threads(ctx.tid, &[*tid]);
        }
        self.std.join().map(|value| {
            // invariant: a registered thread only returns None when the
            // execution aborted, and then `join_threads` has already
            // panicked this thread with the abort token.
            value.expect("joined a thread of an aborted execution")
        })
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; registered with the model runtime when one
    /// is active.
    pub fn spawn<T, F>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctx {
            None => ScopedJoinHandle {
                std: self.std.spawn(move || Some(f())),
                child: None,
            },
            Some(ctx) => {
                let tid = ctx.sched.spawn_thread(ctx.tid);
                let child = Ctx {
                    sched: Arc::clone(&ctx.sched),
                    tid,
                };
                self.children.borrow_mut().push(tid);
                ScopedJoinHandle {
                    std: self.std.spawn(move || run_registered(child, f)),
                    child: Some((ctx.clone(), tid)),
                }
            }
        }
    }
}

/// Mirror of [`std::thread::scope`].  Under a model, all children spawned on
/// the scope are joined *through the scheduler* before the underlying `std`
/// scope's implicit join, and a panic out of `f` aborts the execution first
/// so blocked children drain instead of deadlocking `std`'s join.
pub fn scope<'env, F, T>(f: F) -> T
where
    // The *reference* lifetime stays free (unlike `std`, whose closure takes
    // `&'scope Scope<'scope, 'env>`): `std::thread::Scope` is invariant in
    // `'scope`, so a wrapper constructed around the `&'s Scope<'s, 'env>`
    // that `std` hands us can only be borrowed for a fresh, shorter
    // lifetime.  Spawning only needs the `'scope` *type parameter*, which
    // the HRTB still pins.
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctx = rt::current();
    std::thread::scope(move |std_scope| {
        let shim = Scope {
            std: std_scope,
            ctx: ctx.clone(),
            children: std::cell::RefCell::new(Vec::new()),
        };
        match ctx {
            None => f(&shim),
            Some(ctx) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| f(&shim)));
                let children = shim.children.borrow().clone();
                match outcome {
                    Ok(value) => {
                        ctx.sched.join_threads(ctx.tid, &children);
                        value
                    }
                    Err(payload) => {
                        // Abort before std's implicit join: children still
                        // waiting for turns must drain, or that join hangs.
                        ctx.sched.emergency_exit(ctx.tid, payload);
                        std::panic::panic_any(rt::AbortToken);
                    }
                }
            }
        }
    })
}
