//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! vendored shim provides the subset of criterion 0.5's API that the
//! `annot-bench` targets use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], the `sample_size` / `warm_up_time` /
//! `measurement_time` knobs and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock harness that
//! reports mean ± stddev ns/iter per benchmark. Swap the path dependency
//! back to real criterion for statistically rigorous measurements and HTML
//! reports; the bench sources compile unchanged against either.
//!
//! Two environment variables extend the shim for CI use:
//!
//! * `BENCH_QUICK=1` — quick mode: clamps every group's sample size, warm-up
//!   and measurement time so a full `cargo bench` sweep finishes in seconds
//!   (for smoke-testing the benches and producing coarse trend numbers).
//! * `BENCH_ESTIMATES=<path>` — appends one JSON object per benchmark
//!   (`{"group":…,"bench":…,"mean_ns":…,"stddev_ns":…,"samples":…}`, one per
//!   line) to the given file, so CI can archive the estimates as a
//!   `BENCH_*.json` baseline without parsing stdout.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Quick-mode clamps applied to every group when `BENCH_QUICK` is set.
const QUICK_MAX_SAMPLES: usize = 3;
const QUICK_MAX_WARM_UP: Duration = Duration::from_millis(20);
const QUICK_MAX_MEASUREMENT: Duration = Duration::from_millis(60);

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
    quick: bool,
    estimates_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_millis(1000),
            quick: std::env::var("BENCH_QUICK")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false),
            estimates_path: std::env::var("BENCH_ESTIMATES")
                .ok()
                .filter(|p| !p.is_empty()),
        }
    }
}

impl Criterion {
    /// No-op compatibility hook (real criterion parses CLI flags here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("\ngroup: {}", name.as_ref());
        let (sample_size, warm_up, measurement) = clamp_quick(
            self.quick,
            self.default_sample_size,
            self.default_warm_up,
            self.default_measurement,
        );
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            quick: self.quick,
            estimates_path: self.estimates_path.clone(),
            _parent: self,
            sample_size,
            warm_up,
            measurement,
        }
    }
}

/// Applies the quick-mode clamps to a group's timing configuration.
fn clamp_quick(
    quick: bool,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
) -> (usize, Duration, Duration) {
    if quick {
        (
            sample_size.min(QUICK_MAX_SAMPLES),
            warm_up.min(QUICK_MAX_WARM_UP),
            measurement.min(QUICK_MAX_MEASUREMENT),
        )
    } else {
        (sample_size, warm_up, measurement)
    }
}

/// Formats one estimate as a single-line JSON object.  Names are produced by
/// the benches themselves (ASCII, no quotes), but escape the JSON-special
/// characters anyway so the output is always valid.
fn format_estimate(group: &str, bench: &str, mean: f64, sd: f64, samples: usize) -> String {
    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\"stddev_ns\":{:.1},\"samples\":{}}}",
        escape(group),
        escape(bench),
        mean,
        sd,
        samples
    )
}

/// A group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    quick: bool,
    estimates_path: Option<String>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (clamped in quick mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        if self.quick {
            self.sample_size = self.sample_size.min(QUICK_MAX_SAMPLES);
        }
        self
    }

    /// Sets how long to run the routine untimed before sampling (clamped in
    /// quick mode).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = if self.quick {
            d.min(QUICK_MAX_WARM_UP)
        } else {
            d
        };
        self
    }

    /// Sets the total time budget for the timed samples (clamped in quick
    /// mode).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = if self.quick {
            d.min(QUICK_MAX_MEASUREMENT)
        } else {
            d
        };
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine to time.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            routine_called: false,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        assert!(
            bencher.routine_called,
            "benchmark {} never called Bencher::iter",
            id.as_ref()
        );
        let (mean, sd) = mean_stddev(&bencher.samples_ns);
        println!("  {:<40} {:>12.1} ns/iter (± {:.1})", id.as_ref(), mean, sd);
        if let Some(path) = &self.estimates_path {
            let line = format_estimate(&self.name, id.as_ref(), mean, sd, self.sample_size);
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(file, "{}", line);
            }
        }
        self
    }

    /// Marks the group as complete (parity with criterion's consuming
    /// `finish`; dropping the group is equivalent here).
    pub fn finish(self) {}
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    routine_called: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.routine_called = true;

        // Warm-up, also used to calibrate iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let sample_budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((sample_budget_ns / per_iter.max(1.0)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

fn mean_stddev(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    (mean, var.sqrt())
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_records_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim-selftest");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    #[should_panic(expected = "never called Bencher::iter")]
    fn missing_iter_is_reported() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim-selftest-bad");
        group.bench_function("noop", |_b| {});
    }

    #[test]
    fn quick_mode_clamps_timing_configuration() {
        let (samples, warm_up, measurement) =
            clamp_quick(true, 100, Duration::from_secs(3), Duration::from_secs(5));
        assert_eq!(samples, QUICK_MAX_SAMPLES);
        assert_eq!(warm_up, QUICK_MAX_WARM_UP);
        assert_eq!(measurement, QUICK_MAX_MEASUREMENT);
        // Without quick mode the configuration passes through unchanged.
        let (samples, warm_up, measurement) =
            clamp_quick(false, 100, Duration::from_secs(3), Duration::from_secs(5));
        assert_eq!(samples, 100);
        assert_eq!(warm_up, Duration::from_secs(3));
        assert_eq!(measurement, Duration::from_secs(5));
    }

    #[test]
    fn estimates_are_valid_single_line_json() {
        let line = format_estimate("group/a", "bench \"b\"", 12.34, 0.5, 7);
        assert!(!line.contains('\n'));
        assert_eq!(
            line,
            "{\"group\":\"group/a\",\"bench\":\"bench \\\"b\\\"\",\"mean_ns\":12.3,\"stddev_ns\":0.5,\"samples\":7}"
        );
    }
}
