//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! vendored shim provides the subset of criterion 0.5's API that the
//! `annot-bench` targets use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], the `sample_size` / `warm_up_time` /
//! `measurement_time` knobs and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock harness that
//! reports mean ± stddev ns/iter per benchmark. Swap the path dependency
//! back to real criterion for statistically rigorous measurements and HTML
//! reports; the bench sources compile unchanged against either.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// No-op compatibility hook (real criterion parses CLI flags here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("\ngroup: {}", name.as_ref());
        BenchmarkGroup {
            _parent: self,
            sample_size: self.default_sample_size,
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
        }
    }
}

/// A group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the routine untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine to time.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            routine_called: false,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        assert!(
            bencher.routine_called,
            "benchmark {} never called Bencher::iter",
            id.as_ref()
        );
        let (mean, sd) = mean_stddev(&bencher.samples_ns);
        println!("  {:<40} {:>12.1} ns/iter (± {:.1})", id.as_ref(), mean, sd);
        self
    }

    /// Marks the group as complete (parity with criterion's consuming
    /// `finish`; dropping the group is equivalent here).
    pub fn finish(self) {}
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    routine_called: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.routine_called = true;

        // Warm-up, also used to calibrate iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let sample_budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((sample_budget_ns / per_iter.max(1.0)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

fn mean_stddev(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    (mean, var.sqrt())
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_records_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim-selftest");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    #[should_panic(expected = "never called Bencher::iter")]
    fn missing_iter_is_reported() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim-selftest-bad");
        group.bench_function("noop", |_b| {});
    }
}
