//! Intern/resolve round-trips for the `ValueId` flat-storage layer (PR 4).
//!
//! The evaluation stack joins on interned `u32` [`ValueId`]s and resolves
//! back to [`DbValue`]s only at the public boundary.  This suite pins the
//! boundary down:
//!
//! * `Display` parity — rendering through intern→resolve equals rendering
//!   the `DbValue` directly, for every value kind and for whole instances;
//! * instance equality is insertion-order independent and value-wise (two
//!   instances over independent interners compare by value);
//! * a differential check that the interned evaluation and oracle paths
//!   match the `DbValue`-boundary references on the cross-validation
//!   representative semirings.

use annot_core::brute_force::{
    find_counterexample_ucq, find_counterexample_ucq_naive, BruteForceConfig,
};
use annot_query::eval::{eval_cq, eval_cq_all_outputs, eval_cq_all_outputs_rows, resolve_outputs};
use annot_query::generator::{GeneratorConfig, QueryGenerator, QueryShape};
use annot_query::{DbValue, Domain, Instance, Schema, Tuple, Ucq};
use annot_semiring::{Bool, Lineage, NatPoly, Natural, Semiring, Tropical, Why};

#[test]
fn display_parity_between_interned_and_dbvalue_rendering() {
    let domain = Domain::new();
    let values: Vec<DbValue> = vec![
        DbValue::Int(-3),
        DbValue::Int(0),
        DbValue::Int(42),
        DbValue::str(""),
        DbValue::str("alice"),
        DbValue::str("söme-ütf8"),
        DbValue::Fresh(0),
        DbValue::Fresh(7),
    ];
    for v in &values {
        let id = domain.intern(v);
        let resolved = domain.resolve(id);
        assert_eq!(&resolved, v, "resolve is not the inverse of intern");
        assert_eq!(
            format!("{resolved}"),
            format!("{v}"),
            "Display diverges through the interner"
        );
        // Interning the same value again yields the same id.
        assert_eq!(domain.intern(v), id);
    }
    // Tuple round-trip preserves order and multiplicity.
    let tuple: Tuple = vec!["a".into(), "a".into(), 1.into(), DbValue::Fresh(1)];
    assert_eq!(domain.resolve_tuple(&domain.intern_tuple(&tuple)), tuple);
}

#[test]
fn instance_display_is_interning_and_order_invariant() {
    let schema = Schema::with_relations([("R", 2), ("S", 1)]);
    let facts: Vec<(&str, Tuple)> = vec![
        ("R", vec!["b".into(), "a".into()]),
        ("S", vec![3.into()]),
        ("R", vec!["a".into(), "b".into()]),
        ("S", vec!["a".into()]),
    ];
    // Same facts, two insertion orders, two independent interners.
    let mut forward: Instance<Natural> = Instance::new(schema.clone());
    for (rel, t) in &facts {
        forward.insert_named(rel, t.clone(), Natural(2));
    }
    let mut backward: Instance<Natural> =
        Instance::new(Schema::with_relations([("R", 2), ("S", 1)]));
    for (rel, t) in facts.iter().rev() {
        backward.insert_named(rel, t.clone(), Natural(2));
    }
    assert_eq!(forward, backward);
    assert_eq!(format!("{forward}"), format!("{backward}"));
    // The rendering resolves ids back to the original constants.
    let shown = format!("{forward}");
    for needle in ["R(a, b)", "R(b, a)", "S(3)", "S(a)"] {
        assert!(shown.contains(needle), "missing {needle} in:\n{shown}");
    }
}

#[test]
fn instance_equality_is_insertion_order_independent_randomized() {
    // Insert the same 30 (tuple, annotation) pairs in rotated orders; all
    // rotations must compare equal (and unequal once one fact changes).
    let schema = Schema::with_relations([("R", 2)]);
    let r = schema.relation("R").unwrap();
    let facts: Vec<(Tuple, Natural)> = (0..30i64)
        .map(|i| {
            (
                vec![(i % 5).into(), (i / 5).into()],
                Natural(i as u64 % 4 + 1),
            )
        })
        .collect();
    let build = |order: &[usize]| {
        let mut inst: Instance<Natural> = Instance::new(schema.clone());
        for &i in order {
            let (t, k) = &facts[i];
            inst.insert(r, t.clone(), *k);
        }
        inst
    };
    let base_order: Vec<usize> = (0..facts.len()).collect();
    let reference = build(&base_order);
    for rot in [1usize, 7, 13, 29] {
        let mut order = base_order.clone();
        order.rotate_left(rot);
        assert_eq!(reference, build(&order), "rotation {rot} broke equality");
    }
    let mut tweaked = reference.clone();
    tweaked.insert(r, facts[0].0.clone(), Natural(99));
    assert_ne!(reference, tweaked);
}

/// The interned all-outputs path must match the `DbValue`-boundary
/// reference: per answer tuple, the resolved map entry equals a from-scratch
/// per-tuple [`eval_cq`] evaluation.
fn eval_differential<K: Semiring>() {
    let mut generator = QueryGenerator::new(GeneratorConfig {
        num_atoms: 2,
        shape: QueryShape::Random,
        var_pool: 3,
        num_relations: 2,
        free_vars: 1,
        seed: 0xA11CE,
    });
    for _ in 0..10 {
        let q = generator.cq();
        let instance: Instance<K> = generator.instance(3, 8);
        let rows = eval_cq_all_outputs_rows(&q, &instance);
        let resolved = eval_cq_all_outputs(&q, &instance);
        assert_eq!(
            resolve_outputs(instance.domain(), &rows),
            resolved,
            "{}: rows and resolved maps disagree",
            K::NAME
        );
        for (tuple, value) in &resolved {
            assert_eq!(
                &eval_cq(&q, &instance, tuple),
                value,
                "{}: interned all-outputs disagrees with per-tuple reference",
                K::NAME
            );
            assert!(!value.is_zero(), "{}: support contract violated", K::NAME);
        }
    }
}

#[test]
fn eval_differential_bool() {
    eval_differential::<Bool>();
}

#[test]
fn eval_differential_natural() {
    eval_differential::<Natural>();
}

#[test]
fn eval_differential_tropical() {
    eval_differential::<Tropical>();
}

#[test]
fn eval_differential_why() {
    eval_differential::<Why>();
}

#[test]
fn eval_differential_lineage() {
    eval_differential::<Lineage>();
}

#[test]
fn eval_differential_nat_poly() {
    eval_differential::<NatPoly>();
}

/// The interned oracle walk agrees with the `DbValue`-materialising naive
/// reference, and reported witnesses replay through the public boundary.
fn oracle_differential<K: Semiring>() {
    let mut generator = QueryGenerator::new(GeneratorConfig {
        num_atoms: 2,
        shape: QueryShape::Random,
        var_pool: 3,
        num_relations: 1,
        seed: 0x1D5,
        ..Default::default()
    });
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    for case in 0..8u32 {
        let (q1, q2) = (generator.cq(), generator.cq());
        let (u1, u2) = (Ucq::single(q1), Ucq::single(q2));
        let memoized = find_counterexample_ucq::<K>(&u1, &u2, &config);
        let naive = find_counterexample_ucq_naive::<K>(&u1, &u2, &config);
        assert_eq!(
            memoized.is_some(),
            naive.is_some(),
            "{}: interned and naive oracles disagree on case {case}",
            K::NAME
        );
        if let Some(ce) = memoized {
            // The witness tuple was resolved from interned rows; it must
            // replay on the reported instance through the DbValue API.
            let lhs = eval_cq(&u1.disjuncts()[0], &ce.instance, &ce.tuple);
            let rhs = eval_cq(&u2.disjuncts()[0], &ce.instance, &ce.tuple);
            assert_eq!(ce.lhs, lhs, "{}: lhs does not replay", K::NAME);
            assert_eq!(ce.rhs, rhs, "{}: rhs does not replay", K::NAME);
            assert!(!lhs.leq(&rhs), "{}: violation does not replay", K::NAME);
        }
    }
}

#[test]
fn oracle_differential_bool() {
    oracle_differential::<Bool>();
}

#[test]
fn oracle_differential_natural() {
    oracle_differential::<Natural>();
}

#[test]
fn oracle_differential_why() {
    oracle_differential::<Why>();
}
