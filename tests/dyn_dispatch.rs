//! Acceptance differential test for the runtime-dispatch API: for every
//! semiring registered in [`annot_core::registry`], `decide_cq_dyn` /
//! `decide_ucq_dyn` must return exactly the decision of the typed
//! `decide_cq::<K>` / `decide_ucq::<K>` entry points — same verdict, same
//! method string, same witness.

use annot_core::decide::{decide_cq, decide_ucq, Decision};
use annot_core::registry::{decide_cq_dyn, decide_ucq_dyn, SemiringId};
use annot_query::generator::{GeneratorConfig, QueryGenerator, QueryShape};
use annot_query::{Cq, Ucq};
use annot_semiring::{
    Bool, BoolPoly, BoundedNat, Clearance, Fuzzy, Lineage, NatPoly, Natural, PosBool, Schedule,
    Trio, Tropical, Viterbi, Why,
};

/// Typed dispatch by registry name — the reference side of the differential
/// test.  Must stay in sync with the `REGISTRY` table; the exhaustiveness
/// test below fails if a row is added without extending this match.
fn typed_cq(name: &str, q1: &Cq, q2: &Cq) -> Decision {
    match name {
        "B" => decide_cq::<Bool>(q1, q2),
        "PosBool[X]" => decide_cq::<PosBool>(q1, q2),
        "Fuzzy" => decide_cq::<Fuzzy>(q1, q2),
        "Access" => decide_cq::<Clearance>(q1, q2),
        "Lin[X]" => decide_cq::<Lineage>(q1, q2),
        "Why[X]" => decide_cq::<Why>(q1, q2),
        "Trio[X]" => decide_cq::<Trio>(q1, q2),
        "B[X]" => decide_cq::<BoolPoly>(q1, q2),
        "N[X]" => decide_cq::<NatPoly>(q1, q2),
        "N" => decide_cq::<Natural>(q1, q2),
        "T+" => decide_cq::<Tropical>(q1, q2),
        "T-" => decide_cq::<Schedule>(q1, q2),
        "Viterbi" => decide_cq::<Viterbi>(q1, q2),
        "B_2" => decide_cq::<BoundedNat<2>>(q1, q2),
        "B_3" => decide_cq::<BoundedNat<3>>(q1, q2),
        other => panic!("registry row {other:?} missing from the typed reference dispatch"),
    }
}

fn typed_ucq(name: &str, q1: &Ucq, q2: &Ucq) -> Decision {
    match name {
        "B" => decide_ucq::<Bool>(q1, q2),
        "PosBool[X]" => decide_ucq::<PosBool>(q1, q2),
        "Fuzzy" => decide_ucq::<Fuzzy>(q1, q2),
        "Access" => decide_ucq::<Clearance>(q1, q2),
        "Lin[X]" => decide_ucq::<Lineage>(q1, q2),
        "Why[X]" => decide_ucq::<Why>(q1, q2),
        "Trio[X]" => decide_ucq::<Trio>(q1, q2),
        "B[X]" => decide_ucq::<BoolPoly>(q1, q2),
        "N[X]" => decide_ucq::<NatPoly>(q1, q2),
        "N" => decide_ucq::<Natural>(q1, q2),
        "T+" => decide_ucq::<Tropical>(q1, q2),
        "T-" => decide_ucq::<Schedule>(q1, q2),
        "Viterbi" => decide_ucq::<Viterbi>(q1, q2),
        "B_2" => decide_ucq::<BoundedNat<2>>(q1, q2),
        "B_3" => decide_ucq::<BoundedNat<3>>(q1, q2),
        other => panic!("registry row {other:?} missing from the typed reference dispatch"),
    }
}

fn cq_pair(seed: u64) -> (Cq, Cq) {
    let mut generator = QueryGenerator::new(GeneratorConfig {
        num_atoms: 2 + (seed % 2) as usize,
        shape: QueryShape::Random,
        var_pool: 3,
        num_relations: 1 + (seed % 2) as usize,
        free_vars: (seed % 3) as usize,
        seed,
    });
    (generator.cq(), generator.cq())
}

fn ucq_pair(seed: u64) -> (Ucq, Ucq) {
    let mut generator = QueryGenerator::new(GeneratorConfig {
        num_atoms: 2,
        shape: QueryShape::Random,
        var_pool: 3,
        num_relations: 1,
        free_vars: (seed % 2) as usize,
        seed,
    });
    (generator.ucq(2), generator.ucq(2))
}

#[test]
fn dyn_cq_matches_typed_cq_for_every_registered_semiring() {
    for seed in 0..40u64 {
        let (q1, q2) = cq_pair(seed);
        for id in SemiringId::all() {
            let dynamic = decide_cq_dyn(id, &q1, &q2);
            let typed = typed_cq(id.name(), &q1, &q2);
            assert_eq!(
                dynamic,
                typed,
                "seed {seed}, semiring {}: dyn and typed CQ decisions diverge",
                id.name()
            );
        }
    }
}

#[test]
fn dyn_ucq_matches_typed_ucq_for_every_registered_semiring() {
    for seed in 0..25u64 {
        let (q1, q2) = ucq_pair(seed);
        for id in SemiringId::all() {
            let dynamic = decide_ucq_dyn(id, &q1, &q2);
            let typed = typed_ucq(id.name(), &q1, &q2);
            assert_eq!(
                dynamic,
                typed,
                "seed {seed}, semiring {}: dyn and typed UCQ decisions diverge",
                id.name()
            );
        }
    }
}

#[test]
fn every_alias_resolves_to_its_canonical_row() {
    for id in SemiringId::all() {
        assert_eq!(SemiringId::from_name(id.name()), Some(id));
        for alias in id.aliases() {
            assert_eq!(
                SemiringId::from_name(alias),
                Some(id),
                "alias {alias:?} does not resolve to {}",
                id.name()
            );
            // Case-insensitively, too — the protocol accepts `why[x]`.
            assert_eq!(SemiringId::from_name(&alias.to_uppercase()), Some(id));
            assert_eq!(SemiringId::from_name(&alias.to_lowercase()), Some(id));
        }
    }
    assert_eq!(SemiringId::from_name("no-such-semiring"), None);
}

#[test]
fn reflexive_containment_holds_dynamically_everywhere() {
    // q ⊑ q for every semiring, through the dynamic path: a quick sanity
    // floor that exercises each registry row's criterion at least once with
    // a decidable instance.
    let (q, _) = cq_pair(7);
    let u = Ucq::single(q.clone());
    for id in SemiringId::all() {
        let cq_decision = decide_cq_dyn(id, &q, &q);
        assert_ne!(
            cq_decision.decided(),
            Some(false),
            "semiring {}: q ⊑ q came back NotContained",
            id.name()
        );
        let ucq_decision = decide_ucq_dyn(id, &u, &u);
        assert_ne!(
            ucq_decision.decided(),
            Some(false),
            "semiring {}: q ⊑ q (UCQ) came back NotContained",
            id.name()
        );
    }
}
