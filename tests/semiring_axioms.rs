//! Empirical-vs-declared classification: `classify()`'s sampling-based
//! verdicts must agree with each shipped semiring's declared
//! [`ClassProfile`] on every axiom the paper uses to define the
//! sufficient-condition classes (⊗-idempotence / `S_hcov`, 1-annihilation /
//! `S_in`, ⊗-semi-idempotence / `S_sur`, ⊕-idempotence / `S¹`, offsets /
//! `S^k`), and the derived intersection-class memberships must be
//! consistent.

use annot_core::classes::{ClassifiedSemiring, Offset};
use annot_core::classify::classify;
use annot_semiring::axioms::{check_semiring_laws, is_positive};
use annot_semiring::{
    Bool, BoolPoly, BoundedNat, Clearance, Fuzzy, Lineage, NatPoly, Natural, PosBool, Schedule,
    Semiring, Trio, Tropical, Viterbi, Why,
};

fn assert_profile_matches_empirical<K: ClassifiedSemiring>() {
    let declared = K::class_profile();
    let empirical = classify::<K>();
    let name = declared.name;

    assert_eq!(
        empirical.in_s_hcov, declared.in_s_hcov,
        "{name}: ⊗-idempotence (S_hcov) mismatch"
    );
    assert_eq!(
        empirical.in_s_in, declared.in_s_in,
        "{name}: 1-annihilation (S_in) mismatch"
    );
    assert_eq!(
        empirical.in_s_sur, declared.in_s_sur,
        "{name}: ⊗-semi-idempotence (S_sur) mismatch"
    );
    assert_eq!(empirical.offset, declared.offset, "{name}: offset mismatch");

    // ⊕-idempotence is exactly offset 1 (class S¹).
    assert_eq!(
        empirical.axioms.add_idempotent,
        declared.offset == Offset::Finite(1),
        "{name}: ⊕-idempotence inconsistent with the declared offset"
    );

    // C_hom = S_hcov ∩ S_in (Thm. 3.3), both empirically and as declared.
    assert_eq!(
        empirical.in_c_hom,
        declared.in_c_hom(),
        "{name}: C_hom membership mismatch"
    );

    // A certified empirical criterion must match the declared exact one.
    if let Some(certified) = empirical.certified_cq_criterion {
        assert_eq!(
            certified, declared.cq_criterion,
            "{name}: certified CQ criterion disagrees with the declared one"
        );
    }
    if let Some(certified) = empirical.certified_ucq_criterion {
        assert_eq!(
            certified, declared.ucq_criterion,
            "{name}: certified UCQ criterion disagrees with the declared one"
        );
    }
}

fn assert_is_lawful<K: Semiring>() {
    if let Err(violations) = check_semiring_laws::<K>() {
        panic!("{}: semiring laws violated: {:?}", K::NAME, violations);
    }
    assert!(is_positive::<K>(), "{}: positivity fails", K::NAME);
}

macro_rules! per_semiring {
    ($f:ident) => {
        $f::<Bool>();
        $f::<PosBool>();
        $f::<Fuzzy>();
        $f::<Viterbi>();
        $f::<Clearance>();
        $f::<Lineage>();
        $f::<Tropical>();
        $f::<Schedule>();
        $f::<Why>();
        $f::<Trio>();
        $f::<NatPoly>();
        $f::<BoolPoly>();
        $f::<Natural>();
        $f::<BoundedNat<1>>();
        $f::<BoundedNat<2>>();
        $f::<BoundedNat<3>>();
        $f::<BoundedNat<5>>();
    };
}

/// Every shipped semiring satisfies the commutative-semiring laws and
/// positivity on its sample elements (the paper's standing assumptions,
/// Sec. 2 and Prop. 3.1).
#[test]
fn all_shipped_semirings_are_lawful() {
    per_semiring!(assert_is_lawful);
}

/// The declared `ClassProfile` of every shipped semiring agrees with the
/// empirical classification derived purely from the `Semiring` operations.
#[test]
fn declared_profiles_match_empirical_classification() {
    per_semiring!(assert_profile_matches_empirical);
}

/// Spot checks pinning the expected axiom outcomes per Table 1 row, so a
/// regression in *both* the declared profile and the axiom checker (which
/// the agreement test above would miss) still gets caught.
#[test]
fn expected_axioms_per_table1_row() {
    // C_hom row: lattices are ⊗-idempotent and 1-annihilating.
    assert!(classify::<Bool>().in_c_hom);
    assert!(classify::<Fuzzy>().in_c_hom);
    // C_hcov row: lineage is ⊗-idempotent but not 1-annihilating.
    let lineage = classify::<Lineage>();
    assert!(lineage.in_s_hcov && !lineage.in_s_in);
    // S_in row: the tropical semiring is 1-annihilating, not ⊗-idempotent.
    let tropical = classify::<Tropical>();
    assert!(tropical.in_s_in && !tropical.in_s_hcov);
    assert_eq!(tropical.offset, Offset::Finite(1));
    // C_sur row: why-provenance is ⊗-semi-idempotent only.
    let why = classify::<Why>();
    assert!(why.in_s_sur && !why.in_s_hcov && !why.in_s_in);
    // C_bi row: N[X] satisfies none of the sufficient axioms and has no
    // finite offset.
    let nat_poly = classify::<NatPoly>();
    assert!(!nat_poly.in_s_hcov && !nat_poly.in_s_in && !nat_poly.in_s_sur);
    assert_eq!(nat_poly.offset, Offset::Infinite);
    // Open row: bag semantics has no finite offset and is not ⊕-idempotent.
    let natural = classify::<Natural>();
    assert_eq!(natural.offset, Offset::Infinite);
    assert!(!natural.axioms.add_idempotent);
    // Offset-k family: saturating bags B_k have offset exactly k.
    assert_eq!(classify::<BoundedNat<2>>().offset, Offset::Finite(2));
    assert_eq!(classify::<BoundedNat<3>>().offset, Offset::Finite(3));
    assert_eq!(classify::<BoundedNat<5>>().offset, Offset::Finite(5));
}
