//! Differential validation of the prefix-memoized oracle (PR 3).
//!
//! The brute-force oracle now has three evaluation strategies that must be
//! observationally identical:
//!
//! * the **naive** path ([`find_counterexample_ucq_naive`]): materialise
//!   every support-bounded instance, evaluate both queries from scratch;
//! * the **direct** prefix-memoized walk (incremental [`EvalState`] over
//!   `K`), used for scalar annotation domains;
//! * the **factorized** walk (incremental [`EvalState`] over `N[X]` plus the
//!   Prop. 3.2 evaluation morphism), used for heap-carrying domains with ≥ 2
//!   non-zero samples.
//!
//! This suite pins their agreement over randomized CQ/CCQ/UCQ workloads for
//! the representative semirings of both dispatch classes, the annotation
//! maps the incremental states maintain against the one-shot evaluators
//! under randomized push/pop walks, and the instance-count invariant of the
//! enumerator on full walks — `Σ_{k≤cap} orbits(k)·sᵏ` quotiented, falling
//! back to `Σ_{k≤cap} C(n,k)·sᵏ` with the quotient knob off.
//!
//! Since PR 9 the memoized walks search over [`Semiring::decisive_samples`]
//! and prune value-symmetric support prefixes, while the naive reference
//! still materialises every instance over the *full* `sample_elements()`
//! set: every memoized-vs-naive agreement check below therefore doubles as
//! a reduced-vs-full differential.  The `quotient_sweep_*` tests add the
//! quotiented-vs-unquotiented axis explicitly (via the config knob) across
//! CQ/UCQ/DUCQ shapes and thread counts {1, 2, 8}, with per-mode witness
//! bit-equality.
//!
//! The `thread_sweep_*` tests (PR 6) pin the work-stealing scheduler: the
//! reported counterexample must be bit-identical across thread counts
//! {1, 2, 8}, the visit invariant must survive stealing, and a search
//! truncated by `max_instances` — where workers race the stop flag — must
//! fail cleanly or report a genuine witness, never anything in between.
//! CI runs them under `RUST_TEST_THREADS=1` so the oracle's own workers are
//! the only concurrency being exercised.

use annot_core::brute_force::{
    bounded_instance_count, find_counterexample_ducq, find_counterexample_ducq_naive,
    find_counterexample_ucq, find_counterexample_ucq_naive, quotiented_instance_count,
    try_find_counterexample_ucq, BruteForceConfig, BruteForceError, CounterExample,
};
use annot_query::eval::{
    eval_ccq_all_outputs, eval_cq, eval_ducq_all_outputs, eval_ucq_all_outputs, EvalState,
};
use annot_query::generator::{GeneratorConfig, QueryGenerator, QueryShape};
use annot_query::{Ccq, Cq, Ducq, Instance, QVar, Schema, Tuple, Ucq};
use annot_semiring::{Bool, Lineage, NatPoly, Natural, Semiring, Tropical, Why};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn generator(seed: u64) -> QueryGenerator {
    QueryGenerator::new(GeneratorConfig {
        num_atoms: 2,
        shape: QueryShape::Random,
        var_pool: 3,
        num_relations: 1,
        seed,
        ..Default::default()
    })
}

/// Memoized and naive oracles must agree on the *existence* of a
/// counterexample, and every reported counterexample must replay under the
/// one-shot evaluators (`lhs = Q₁ᴵ(t)`, `rhs = Q₂ᴵ(t)`, `lhs ≰ rhs`).
fn check_agreement<K: Semiring>(u1: &Ucq, u2: &Ucq, config: &BruteForceConfig, case: u64) {
    let memoized = find_counterexample_ucq::<K>(u1, u2, config);
    let naive = find_counterexample_ucq_naive::<K>(u1, u2, config);
    assert_eq!(
        memoized.is_some(),
        naive.is_some(),
        "{}: memoized and naive oracles disagree on case {case}: {} vs {}",
        K::NAME,
        u1,
        u2
    );
    for ce in [memoized, naive].into_iter().flatten() {
        let lhs = eval_ucq(u1, &ce.instance, &ce.tuple);
        let rhs = eval_ucq(u2, &ce.instance, &ce.tuple);
        assert_eq!(ce.lhs, lhs, "{}: reported lhs is not Q₁ᴵ(t)", K::NAME);
        assert_eq!(ce.rhs, rhs, "{}: reported rhs is not Q₂ᴵ(t)", K::NAME);
        assert!(!lhs.leq(&rhs), "{}: reported violation replays", K::NAME);
    }
}

fn eval_ucq<K: Semiring>(u: &Ucq, instance: &Instance<K>, t: &Tuple) -> K {
    u.disjuncts()
        .iter()
        .fold(K::zero(), |acc, cq| acc.add(&eval_cq(cq, instance, t)))
}

// Randomized case loads, with a Miri quick mode (the interpreter is
// orders of magnitude slower; one case per shape still exercises every
// code path memory-wise).  `quick_mode_is_not_a_no_op` pins the floors.
#[cfg(not(miri))]
const CQ_SEEDS: u64 = 40;
#[cfg(miri)]
const CQ_SEEDS: u64 = 2;
#[cfg(not(miri))]
const UCQ_SEEDS: u64 = 15;
#[cfg(miri)]
const UCQ_SEEDS: u64 = 1;
#[cfg(not(miri))]
const WALK_STEPS: usize = 60;
#[cfg(miri)]
const WALK_STEPS: usize = 10;

/// Scales a full-mode case count down to the Miri quick mode, never below
/// one case (a zero-case suite would be a silent no-op).
fn quick(cases: u64) -> u64 {
    if cfg!(miri) {
        (cases / 4).max(1)
    } else {
        cases
    }
}

#[test]
fn quick_mode_is_not_a_no_op() {
    assert!(CQ_SEEDS >= 1 && UCQ_SEEDS >= 1 && WALK_STEPS >= 1 && quick(3) >= 1);
}

fn differential_cq_cases<K: Semiring>() {
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    for seed in 0..CQ_SEEDS {
        let mut g = generator(9000 + seed);
        let (q1, q2) = (g.cq(), g.cq());
        check_agreement::<K>(&Ucq::single(q1), &Ucq::single(q2), &config, seed);
    }
}

fn differential_ucq_cases<K: Semiring>() {
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    for seed in 0..UCQ_SEEDS {
        let mut g = generator(9500 + seed);
        let (u1, u2) = (g.ucq(2), g.ucq(2));
        check_agreement::<K>(&u1, &u2, &config, seed);
    }
}

// One representative per dispatch class and order shape: `B` (single-sample
// direct), `N`/`T⁺` (scalar direct, plural samples), `Lin[X]`/`Why[X]`/`N[X]`
// (heap-carrying factorized).

#[test]
fn differential_cq_bool() {
    differential_cq_cases::<Bool>();
}

#[test]
fn differential_cq_natural() {
    differential_cq_cases::<Natural>();
}

#[test]
fn differential_cq_tropical() {
    differential_cq_cases::<Tropical>();
}

#[test]
fn differential_cq_lineage() {
    differential_cq_cases::<Lineage>();
}

#[test]
fn differential_cq_why() {
    differential_cq_cases::<Why>();
}

#[test]
fn differential_cq_nat_poly() {
    differential_cq_cases::<NatPoly>();
}

#[test]
fn differential_ucq_natural() {
    differential_ucq_cases::<Natural>();
}

#[test]
fn differential_ucq_why() {
    differential_ucq_cases::<Why>();
}

#[test]
fn differential_ucq_nat_poly() {
    differential_ucq_cases::<NatPoly>();
}

// ---------------------------------------------------------------------------
// Annotation maps: EvalState vs the one-shot evaluators under random walks
// ---------------------------------------------------------------------------

/// Drives an [`EvalState`] through a random push/pop walk and checks the
/// maintained annotation map against `oneshot` of the equivalent instance
/// after every step.
fn random_walk_matches_oneshot<K: Semiring>(
    schema: &Schema,
    state: &mut EvalState<'_, K>,
    oneshot: &dyn Fn(&Instance<K>) -> std::collections::BTreeMap<Tuple, K>,
    rng: &mut StdRng,
) {
    let samples: Vec<K> = K::sample_elements();
    let rels: Vec<_> = schema.rel_ids().collect();
    // The shadow stack of concrete facts mirrored into a rebuilt instance.
    let mut stack: Vec<(annot_query::RelId, Tuple, K)> = Vec::new();
    for _ in 0..WALK_STEPS {
        let push = stack.is_empty() || rng.gen_range(0..10u32) < 6;
        if push {
            let rel = rels[rng.gen_range(0..rels.len())];
            let tuple: Tuple = (0..schema.arity(rel))
                .map(|_| annot_query::DbValue::Int(rng.gen_range(0..2i64)))
                .collect();
            let k = samples[rng.gen_range(0..samples.len())].clone();
            state.push_fact(rel, tuple.clone(), k.clone());
            stack.push((rel, tuple, k));
        } else {
            state.pop_fact();
            stack.pop();
        }
        let mut instance: Instance<K> = Instance::new(schema.clone());
        for (rel, tuple, k) in &stack {
            instance.add_annotation(*rel, tuple.clone(), k.clone());
        }
        assert_eq!(
            state.outputs(),
            oneshot(&instance),
            "{}: annotation map diverged at depth {}",
            K::NAME,
            stack.len()
        );
    }
}

fn walk_schema() -> Schema {
    Schema::with_relations([("R", 2), ("S", 1)])
}

fn walk_cq(schema: &Schema) -> Cq {
    Cq::builder(schema)
        .free(&["x"])
        .atom("R", &["x", "y"])
        .atom("S", &["y"])
        .build()
}

#[test]
fn eval_state_cq_maps_match_under_random_walks() {
    let schema = walk_schema();
    let q = walk_cq(&schema);
    let mut rng = StdRng::seed_from_u64(0xD1);
    let mut state: EvalState<'_, Natural> = EvalState::for_cq(&q);
    random_walk_matches_oneshot(
        &schema,
        &mut state,
        &|i| annot_query::eval::eval_cq_all_outputs(&q, i),
        &mut rng,
    );
}

#[test]
fn eval_state_ccq_maps_match_under_random_walks() {
    let schema = walk_schema();
    let base = Cq::builder(&schema)
        .atom("R", &["x", "y"])
        .atom("R", &["z", "w"])
        .build();
    let ccq = Ccq::new(base, [(QVar(0), QVar(2))]);
    let mut rng = StdRng::seed_from_u64(0xD2);
    let mut state: EvalState<'_, Natural> = EvalState::for_ccq(&ccq);
    random_walk_matches_oneshot(
        &schema,
        &mut state,
        &|i| eval_ccq_all_outputs(&ccq, i),
        &mut rng,
    );
}

#[test]
fn eval_state_ucq_maps_match_under_random_walks_nat_poly() {
    // N[X] exercises the factorized dispatch class end to end: polynomial
    // annotations flowing through the incremental joins.
    let schema = walk_schema();
    let q1 = Cq::builder(&schema).atom("S", &["v"]).build();
    let q2 = Cq::builder(&schema)
        .atom("R", &["x", "y"])
        .atom("S", &["y"])
        .build();
    let ucq = Ucq::new([q1, q2]);
    let mut rng = StdRng::seed_from_u64(0xD3);
    let mut state: EvalState<'_, NatPoly> = EvalState::for_ucq(&ucq);
    random_walk_matches_oneshot(
        &schema,
        &mut state,
        &|i| eval_ucq_all_outputs(&ucq, i),
        &mut rng,
    );
}

#[test]
fn eval_state_ducq_maps_match_under_random_walks() {
    let schema = walk_schema();
    let base = Cq::builder(&schema)
        .atom("R", &["x", "y"])
        .atom("R", &["z", "w"])
        .build();
    let ccq1 = Ccq::new(base, [(QVar(0), QVar(2))]);
    let ccq2 = Ccq::from_cq(Cq::builder(&schema).atom("S", &["v"]).build());
    let ducq = Ducq::new([ccq1, ccq2]);
    let mut rng = StdRng::seed_from_u64(0xD4);
    let mut state: EvalState<'_, Why> = EvalState::for_ducq(&ducq);
    random_walk_matches_oneshot(
        &schema,
        &mut state,
        &|i| eval_ducq_all_outputs(&ducq, i),
        &mut rng,
    );
}

// ---------------------------------------------------------------------------
// The enumeration invariant under both prefix-walk strategies
// ---------------------------------------------------------------------------

/// An irrefutable search (`Q ⊆ Q` always holds) must walk exactly
/// `Σ_{k≤cap} orbits(k)·sᵏ` instances over the decisive samples — for the
/// factorized walk (which visits `Σ orbits(k)` tree nodes and *accounts*
/// `sᵏ` instances per node) just as for the direct walk, sequentially and
/// in parallel — and exactly `Σ_{k≤cap} C(n,k)·sᵏ` with the symmetry
/// quotient turned off.
fn full_walk_counts<K: Semiring>() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q = annot_query::parser::parse_ucq(&mut schema, "Q() :- R(u, v), R(v, w)").unwrap();
    let nonzero = K::decisive_samples()
        .into_iter()
        .filter(|k| !k.is_zero())
        .count();
    for cap in 0..=4usize {
        let quotiented = quotiented_instance_count(&schema, 2, nonzero, cap) as u64;
        let full = bounded_instance_count(4, nonzero, cap) as u64;
        for threads in [1usize, 2] {
            for (symmetry_quotient, expected) in [(true, quotiented), (false, full)] {
                let config = BruteForceConfig {
                    domain_size: 2,
                    max_support: cap,
                    threads,
                    symmetry_quotient,
                    ..Default::default()
                };
                let outcome = try_find_counterexample_ucq::<K>(&q, &q, &config).unwrap();
                assert!(outcome.counterexample.is_none(), "Q ⊆ Q must hold");
                assert_eq!(
                    outcome.stats.instances_visited,
                    expected,
                    "{}: cap {cap}, threads {threads}, quotient {symmetry_quotient}: \
                     wrong instance count",
                    K::NAME
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The sibling-sharing factorized walk (PR 5)
// ---------------------------------------------------------------------------

/// The shared-substitution factorized walk — which memoizes, per prefix
/// node, the sample-assignment evaluations of the unchanged (parent) output
/// polynomials and re-evaluates only monomials containing the newly
/// branched slot's variable — must return exactly the same counterexample
/// verdicts as the naive one-shot oracle at caps 1–4, sequentially and in
/// parallel, and a full (irrefutable, `Q ⊆ Q`) walk must still visit
/// exactly `Σ_{k≤cap} C(n,k)·sᵏ` instances under both thread counts.
/// `cases` scales the random-pair load per (cap, thread) cell: the naive
/// reference's cost grows with the semiring's non-zero sample count, so
/// `Why[X]` (6 non-zero samples) runs fewer pairs than `Lin[X]`/`N[X]`.
fn sibling_sharing_matches_naive<K: Semiring>(cases: u64) {
    let nonzero = K::decisive_samples()
        .into_iter()
        .filter(|k| !k.is_zero())
        .count();
    for cap in 1..=4usize {
        let config = BruteForceConfig {
            domain_size: 2,
            max_support: cap,
            ..Default::default()
        };
        for seed in 0..cases {
            let mut g = generator(9800 + seed);
            let (u1, u2) = (g.ucq(2), g.ucq(2));
            // The naive verdict is thread-independent; compute it once and
            // hold the shared-substitution walk to it under both counts.
            let naive = find_counterexample_ucq_naive::<K>(&u1, &u2, &config);
            for threads in [1usize, 2] {
                let config = config.clone().with_threads(threads);
                let shared = find_counterexample_ucq::<K>(&u1, &u2, &config);
                assert_eq!(
                    shared.is_some(),
                    naive.is_some(),
                    "{}: cap {cap}, threads {threads}: sibling-sharing walk and naive \
                     oracle disagree on {} vs {}",
                    K::NAME,
                    u1,
                    u2
                );
                if let Some(ce) = shared {
                    let lhs = eval_ucq(&u1, &ce.instance, &ce.tuple);
                    let rhs = eval_ucq(&u2, &ce.instance, &ce.tuple);
                    assert_eq!(ce.lhs, lhs, "{}: reported lhs replay", K::NAME);
                    assert_eq!(ce.rhs, rhs, "{}: reported rhs replay", K::NAME);
                    assert!(!lhs.leq(&rhs), "{}: reported violation replay", K::NAME);
                }
            }
        }
        // The Σ orbits(k)·sᵏ visit invariant on an irrefutable full walk.
        let mut schema = Schema::with_relations([("R", 2)]);
        let q = annot_query::parser::parse_ucq(&mut schema, "Q() :- R(u, v), R(v, w)").unwrap();
        for threads in [1usize, 2] {
            let config = config.clone().with_threads(threads);
            let outcome = try_find_counterexample_ucq::<K>(&q, &q, &config).unwrap();
            assert!(outcome.counterexample.is_none());
            assert_eq!(
                outcome.stats.instances_visited,
                quotiented_instance_count(&schema, 2, nonzero, cap) as u64,
                "{}: cap {cap}, threads {threads}: wrong visit count",
                K::NAME
            );
        }
    }
}

#[test]
fn sibling_sharing_matches_naive_why() {
    sibling_sharing_matches_naive::<Why>(quick(3));
}

#[test]
fn sibling_sharing_matches_naive_lineage() {
    sibling_sharing_matches_naive::<Lineage>(quick(6));
}

#[test]
fn sibling_sharing_matches_naive_nat_poly() {
    sibling_sharing_matches_naive::<NatPoly>(quick(6));
}

#[test]
fn full_walk_counts_direct_natural() {
    full_walk_counts::<Natural>();
}

// ---------------------------------------------------------------------------
// The work-stealing walk: thread sweeps (PR 6)
// ---------------------------------------------------------------------------

/// Across thread counts {1, 2, 8} the oracle must report the *same*
/// counterexample — bit-identical instance, tuple and annotations — on every
/// refutable pair, not merely agree that one exists.  The sequential walk's
/// first hit is the DFS-minimal violating prefix; the stealing walk keeps the
/// lexicographically smallest (job, prefix-path) witness, which coincides
/// with it.  Randomized pairs supply multi-counterexample workloads where a
/// "first thread wins" scheduler would diverge run to run.
fn thread_sweep_witnesses<K: Semiring>(cases: u64) {
    let base = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    let mut refuted = 0u64;
    for seed in 0..cases {
        let mut g = generator(9900 + seed);
        let (u1, u2) = (g.ucq(2), g.ucq(2));
        let sequential = find_counterexample_ucq::<K>(&u1, &u2, &base.clone().with_threads(1));
        for threads in [2usize, 8] {
            let swept = find_counterexample_ucq::<K>(&u1, &u2, &base.clone().with_threads(threads));
            match (&sequential, &swept) {
                (None, None) => {}
                (Some(seq), Some(par)) => {
                    assert_eq!(
                        seq.instance,
                        par.instance,
                        "{}: threads {threads}: witness instance drifted on {} vs {}",
                        K::NAME,
                        u1,
                        u2
                    );
                    assert_eq!(seq.tuple, par.tuple, "{}: witness tuple drifted", K::NAME);
                    assert_eq!(seq.lhs, par.lhs, "{}: witness lhs drifted", K::NAME);
                    assert_eq!(seq.rhs, par.rhs, "{}: witness rhs drifted", K::NAME);
                }
                _ => panic!(
                    "{}: threads {threads}: verdict flipped on {} vs {}",
                    K::NAME,
                    u1,
                    u2
                ),
            }
        }
        refuted += u64::from(sequential.is_some());
    }
    assert!(
        refuted > 0,
        "{}: workload never refuted — the witness sweep is vacuous",
        K::NAME
    );
}

#[test]
fn thread_sweep_witnesses_direct_natural() {
    thread_sweep_witnesses::<Natural>(quick(12));
}

#[test]
fn thread_sweep_witnesses_factorized_lineage() {
    thread_sweep_witnesses::<Lineage>(quick(8));
}

#[test]
fn thread_sweep_witnesses_factorized_why() {
    thread_sweep_witnesses::<Why>(quick(4));
}

/// Example 4.6's pair (`R(u,v), R(u,w)` vs `R(u,v), R(u,v)`) has *many*
/// violating instances over ℕ at cap ≥ 2 — any two facts sharing a first
/// column refute it — so the deterministic-witness guarantee is exercised on
/// a workload where thread scheduling genuinely has rival witnesses to pick
/// from, for both the direct (ℕ) and factorized (ℕ[X]) walks.
#[test]
fn thread_sweep_multi_witness_workload_is_deterministic() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q1 = annot_query::parser::parse_ucq(&mut schema, "Q() :- R(u, v), R(u, w)").unwrap();
    let q2 = annot_query::parser::parse_ucq(&mut schema, "Q() :- R(u, v), R(u, v)").unwrap();
    for cap in [2usize, 4] {
        let config = BruteForceConfig {
            domain_size: 2,
            max_support: cap,
            ..Default::default()
        };
        let seq_nat = find_counterexample_ucq::<Natural>(&q1, &q2, &config.clone().with_threads(1))
            .expect("Example 4.6 refutes over ℕ");
        let seq_poly =
            find_counterexample_ucq::<NatPoly>(&q1, &q2, &config.clone().with_threads(1))
                .expect("Example 4.6 refutes over ℕ[X]");
        for threads in [2usize, 8] {
            let config = config.clone().with_threads(threads);
            let par_nat = find_counterexample_ucq::<Natural>(&q1, &q2, &config)
                .expect("refutation must survive the thread sweep");
            assert_eq!(
                seq_nat.instance, par_nat.instance,
                "ℕ: cap {cap}, threads {threads}"
            );
            assert_eq!(seq_nat.tuple, par_nat.tuple);
            assert_eq!(seq_nat.lhs, par_nat.lhs);
            assert_eq!(seq_nat.rhs, par_nat.rhs);
            let par_poly = find_counterexample_ucq::<NatPoly>(&q1, &q2, &config)
                .expect("refutation must survive the thread sweep");
            assert_eq!(
                seq_poly.instance, par_poly.instance,
                "ℕ[X]: cap {cap}, threads {threads}"
            );
            assert_eq!(seq_poly.tuple, par_poly.tuple);
            assert_eq!(seq_poly.lhs, par_poly.lhs);
            assert_eq!(seq_poly.rhs, par_poly.rhs);
        }
    }
}

/// The quotiented visit invariant must survive stealing: every canonical
/// prefix node is counted exactly once no matter which worker's deque it
/// ends up on, including oversubscribed pools (8 workers, 1-ish cores) —
/// and stolen-prefix replay must respect the pruned order in both quotient
/// modes (`Σ orbits(k)·sᵏ` with the quotient on, `Σ C(n,k)·sᵏ` off).
fn thread_sweep_visit_invariant<K: Semiring>() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q = annot_query::parser::parse_ucq(&mut schema, "Q() :- R(u, v), R(v, w)").unwrap();
    let nonzero = K::decisive_samples()
        .into_iter()
        .filter(|k| !k.is_zero())
        .count();
    for cap in [2usize, 4] {
        let quotiented = quotiented_instance_count(&schema, 2, nonzero, cap) as u64;
        let full = bounded_instance_count(4, nonzero, cap) as u64;
        for threads in [1usize, 2, 8] {
            for (symmetry_quotient, expected) in [(true, quotiented), (false, full)] {
                let config = BruteForceConfig {
                    domain_size: 2,
                    max_support: cap,
                    threads,
                    symmetry_quotient,
                    ..Default::default()
                };
                let outcome = try_find_counterexample_ucq::<K>(&q, &q, &config).unwrap();
                assert!(outcome.counterexample.is_none(), "Q ⊆ Q must hold");
                assert_eq!(
                    outcome.stats.instances_visited,
                    expected,
                    "{}: cap {cap}, threads {threads}, quotient {symmetry_quotient}: \
                     stealing broke the visit count",
                    K::NAME
                );
            }
        }
    }
}

#[test]
fn thread_sweep_visit_invariant_direct_natural() {
    thread_sweep_visit_invariant::<Natural>();
}

#[test]
fn thread_sweep_visit_invariant_factorized_why() {
    thread_sweep_visit_invariant::<Why>();
}

/// Workers race the `max_instances` stop flag: whichever way the race
/// resolves, the outcome must be either a clean budget error or a genuine,
/// replaying counterexample — never a fabricated witness, a wrong error
/// payload, or a hang.
#[test]
fn thread_sweep_budget_race_fails_cleanly_or_finds_a_real_witness() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q1 = annot_query::parser::parse_ucq(&mut schema, "Q() :- R(u, v), R(u, w)").unwrap();
    let q2 = annot_query::parser::parse_ucq(&mut schema, "Q() :- R(u, v), R(u, v)").unwrap();
    let irrefutable = annot_query::parser::parse_ucq(&mut schema, "Q() :- R(u, v)").unwrap();
    for threads in [1usize, 2, 8] {
        let config = BruteForceConfig {
            domain_size: 2,
            max_support: 3,
            threads,
            max_instances: Some(10),
            symmetry_quotient: true,
        };
        // An irrefutable pair (full walk ≫ 10 instances) can only exhaust
        // the budget, on every thread count.
        let err = try_find_counterexample_ucq::<Natural>(&irrefutable, &irrefutable, &config)
            .expect_err("budget must trip before the full walk completes");
        assert_eq!(
            err,
            BruteForceError::InstanceBudgetExceeded { max_instances: 10 }
        );
        // A refutable pair may beat the budget to a witness or lose the
        // race, depending on scheduling — but a reported witness must
        // replay, and a failure must be the budget error.
        match try_find_counterexample_ucq::<Natural>(&q1, &q2, &config) {
            Ok(outcome) => {
                let ce = outcome
                    .counterexample
                    .expect("a walk that beat the budget must carry the refutation");
                let lhs = eval_ucq(&q1, &ce.instance, &ce.tuple);
                let rhs = eval_ucq(&q2, &ce.instance, &ce.tuple);
                assert_eq!(ce.lhs, lhs, "threads {threads}: reported lhs replay");
                assert_eq!(ce.rhs, rhs, "threads {threads}: reported rhs replay");
                assert!(
                    !lhs.leq(&rhs),
                    "threads {threads}: reported violation replay"
                );
            }
            Err(err) => assert_eq!(
                err,
                BruteForceError::InstanceBudgetExceeded { max_instances: 10 }
            ),
        }
    }
}

#[test]
fn full_walk_counts_factorized_why() {
    full_walk_counts::<Why>();
}

#[test]
fn full_walk_counts_factorized_nat_poly() {
    full_walk_counts::<NatPoly>();
}

// ---------------------------------------------------------------------------
// The search-space quotients: reduced samples × symmetry pruning (PR 9)
// ---------------------------------------------------------------------------

fn eval_ducq<K: Semiring>(d: &Ducq, instance: &Instance<K>, t: &Tuple) -> K {
    eval_ducq_all_outputs(d, instance)
        .get(t)
        .cloned()
        .unwrap_or_else(K::zero)
}

/// Runs one (pair, shape) cell of the quotient sweep: for both positions of
/// the `symmetry_quotient` knob the sequential verdict must match the
/// full-sample naive oracle's, the witness must be bit-identical across
/// thread counts {1, 2, 8} *within* each mode, and every reported witness
/// must replay under the one-shot evaluators.  (Across modes only the
/// verdict is pinned: the unquotiented walk may legitimately stop at a
/// witness whose support the quotiented walk prunes as non-canonical.)
/// Returns whether the pair was refuted.
fn sweep_quotient_modes<K: Semiring>(
    base: &BruteForceConfig,
    naive_refutes: bool,
    run: &dyn Fn(&BruteForceConfig) -> Option<CounterExample<K>>,
    replay: &dyn Fn(&CounterExample<K>) -> (K, K),
    label: &str,
) -> bool {
    let mut refuted = false;
    for symmetry_quotient in [true, false] {
        let config = BruteForceConfig {
            symmetry_quotient,
            ..base.clone()
        };
        let reference = run(&config.clone().with_threads(1));
        assert_eq!(
            reference.is_some(),
            naive_refutes,
            "{}: {label}: quotient {symmetry_quotient} flipped the verdict against \
             the full-sample naive oracle",
            K::NAME
        );
        if let Some(ce) = &reference {
            let (lhs, rhs) = replay(ce);
            assert_eq!(ce.lhs, lhs, "{}: {label}: reported lhs replay", K::NAME);
            assert_eq!(ce.rhs, rhs, "{}: {label}: reported rhs replay", K::NAME);
            assert!(
                !lhs.leq(&rhs),
                "{}: {label}: reported violation replay",
                K::NAME
            );
            refuted = true;
        }
        for threads in [2usize, 8] {
            let swept = run(&config.clone().with_threads(threads));
            match (&reference, &swept) {
                (None, None) => {}
                (Some(seq), Some(par)) => {
                    assert_eq!(
                        seq.instance,
                        par.instance,
                        "{}: {label}: threads {threads}, quotient {symmetry_quotient}: \
                         witness instance drifted",
                        K::NAME
                    );
                    assert_eq!(seq.tuple, par.tuple, "{}: witness tuple drifted", K::NAME);
                    assert_eq!(seq.lhs, par.lhs, "{}: witness lhs drifted", K::NAME);
                    assert_eq!(seq.rhs, par.rhs, "{}: witness rhs drifted", K::NAME);
                }
                _ => panic!(
                    "{}: {label}: threads {threads}, quotient {symmetry_quotient}: \
                     verdict drifted across threads",
                    K::NAME
                ),
            }
        }
    }
    refuted
}

/// The quotiented-vs-unquotiented differential across CQ/UCQ/DUCQ shapes:
/// randomized pairs, both `symmetry_quotient` positions, thread counts
/// {1, 2, 8}, verdicts held to the full-sample naive reference and
/// witnesses held bit-identical across threads.
fn quotient_sweep<K: Semiring>(cases: u64) {
    let base = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    let mut refuted = 0u64;
    for seed in 0..cases {
        let mut g = generator(9600 + seed);
        let cq_pair = (Ucq::single(g.cq()), Ucq::single(g.cq()));
        let ucq_pair = (g.ucq(2), g.ucq(2));
        for (shape, (u1, u2)) in [("CQ", cq_pair), ("UCQ", ucq_pair)] {
            let naive = find_counterexample_ucq_naive::<K>(&u1, &u2, &base).is_some();
            let hit = sweep_quotient_modes::<K>(
                &base,
                naive,
                &|config| find_counterexample_ucq::<K>(&u1, &u2, config),
                &|ce| {
                    (
                        eval_ucq(&u1, &ce.instance, &ce.tuple),
                        eval_ucq(&u2, &ce.instance, &ce.tuple),
                    )
                },
                &format!("{shape} seed {seed}"),
            );
            refuted += u64::from(hit);
        }
        let (d1, d2) = (g.ducq(2), g.ducq(2));
        let naive = find_counterexample_ducq_naive::<K>(&d1, &d2, &base).is_some();
        let hit = sweep_quotient_modes::<K>(
            &base,
            naive,
            &|config| find_counterexample_ducq::<K>(&d1, &d2, config),
            &|ce| {
                (
                    eval_ducq(&d1, &ce.instance, &ce.tuple),
                    eval_ducq(&d2, &ce.instance, &ce.tuple),
                )
            },
            &format!("DUCQ seed {seed}"),
        );
        refuted += u64::from(hit);
    }
    assert!(
        refuted > 0,
        "{}: quotient sweep never refuted — the differential is vacuous",
        K::NAME
    );
}

#[test]
fn quotient_sweep_natural() {
    quotient_sweep::<Natural>(quick(8));
}

#[test]
fn quotient_sweep_why() {
    quotient_sweep::<Why>(quick(3));
}

#[test]
fn quotient_sweep_lineage() {
    quotient_sweep::<Lineage>(quick(4));
}

#[test]
fn quotient_sweep_nat_poly() {
    quotient_sweep::<NatPoly>(quick(3));
}
