//! Equivalence suite for the iso-canonical cache keys of [`annot_query::key`].
//!
//! The service cache treats two `DECIDE` requests as the same question when
//! the query pairs are isomorphic, so the key function must be
//!
//! * **invariant** under everything isomorphism ignores — α-renaming of
//!   variables, reordering of atoms, reordering of UCQ disjuncts — and the
//!   decisions behind equal keys must agree (randomized checks below), and
//! * **discriminating** beyond homomorphic equivalence: a pair of queries
//!   that are hom-equivalent but *not* isomorphic ask genuinely different
//!   questions over the injective/surjective semirings of Table 1, so they
//!   must not share a cache key.

use annot_core::registry::{decide_cq_dyn, decide_ucq_dyn, SemiringId};
use annot_hom::iso::are_isomorphic_ucq;
use annot_hom::kinds::exists_hom;
use annot_query::generator::{GeneratorConfig, QueryGenerator, QueryShape};
use annot_query::key::{cq_code, cq_key, ucq_code, ucq_key};
use annot_query::{Atom, Cq, QVar, Schema, Ucq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fisher–Yates over the vendored rand shim (which has no `seq` module).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        items.swap(i, j);
    }
}

/// An α-renamed, atom-reordered copy of `q`: variables are permuted by a
/// random bijection and given fresh names, atoms are shuffled.  By
/// construction the result is isomorphic to `q`.
fn iso_variant(q: &Cq, rng: &mut StdRng) -> Cq {
    let n = q.num_vars();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    shuffle(&mut perm, rng);
    let rename = |v: QVar| QVar(perm[v.0 as usize]);
    let mut atoms: Vec<Atom> = q.atoms().iter().map(|a| a.map_vars(&rename)).collect();
    shuffle(&mut atoms, rng);
    let free: Vec<QVar> = q.free_vars().iter().copied().map(rename).collect();
    let mut names = vec![String::new(); n];
    for (old, &new) in perm.iter().enumerate() {
        names[new as usize] = format!("w{old}");
    }
    Cq::new(q.schema().clone(), free, atoms, names)
}

/// An iso variant of a UCQ: each disjunct renamed independently, disjunct
/// order shuffled.
fn iso_variant_ucq(q: &Ucq, rng: &mut StdRng) -> Ucq {
    let mut members: Vec<Cq> = q
        .disjuncts()
        .iter()
        .map(|cq| iso_variant(cq, rng))
        .collect();
    shuffle(&mut members, rng);
    Ucq::new(members)
}

fn generator(seed: u64, free_vars: usize) -> QueryGenerator {
    QueryGenerator::new(GeneratorConfig {
        num_atoms: 3,
        shape: QueryShape::Random,
        var_pool: 4,
        num_relations: 2,
        free_vars,
        seed,
    })
}

/// Representative semirings for the decision-agreement check: one per
/// CQ-criterion family that the cache actually serves.
fn probe_semirings() -> Vec<SemiringId> {
    ["B", "Why[X]", "N[X]", "N", "T+"]
        .iter()
        .map(|name| SemiringId::from_name(name).expect("registered"))
        .collect()
}

#[test]
fn cq_keys_are_invariant_under_renaming_and_reordering() {
    for seed in 0..40u64 {
        let mut gen = generator(seed, (seed % 3) as usize);
        let q = gen.cq();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let v = iso_variant(&q, &mut rng);
        assert_eq!(
            cq_code(&q),
            cq_code(&v),
            "seed {seed}: iso variant changed the canonical code"
        );
        assert_eq!(
            cq_key(&q),
            cq_key(&v),
            "seed {seed}: iso variant changed the key"
        );
    }
}

#[test]
fn equal_keys_answer_alike_across_the_registry() {
    // A pair with equal keys must get the same decision — the property the
    // cache relies on when it serves a renamed repeat without re-deciding.
    for seed in 0..20u64 {
        let mut gen = generator(seed, 0);
        let q1 = gen.cq();
        let q2 = gen.cq();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
        let (v1, v2) = (iso_variant(&q1, &mut rng), iso_variant(&q2, &mut rng));
        assert_eq!(cq_key(&q1), cq_key(&v1));
        assert_eq!(cq_key(&q2), cq_key(&v2));
        for id in probe_semirings() {
            let original = decide_cq_dyn(id, &q1, &q2);
            let renamed = decide_cq_dyn(id, &v1, &v2);
            assert_eq!(
                original.answer,
                renamed.answer,
                "seed {seed}, {}: decision not invariant under isomorphism",
                id.name()
            );
        }
    }
}

#[test]
fn ucq_keys_are_invariant_under_member_iso_and_disjunct_order() {
    for seed in 0..30u64 {
        let mut gen = generator(seed, 0);
        let q = gen.ucq(2 + (seed % 2) as usize);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let v = iso_variant_ucq(&q, &mut rng);
        assert!(
            are_isomorphic_ucq(&q, &v),
            "seed {seed}: variant not isomorphic"
        );
        assert_eq!(
            ucq_code(&q),
            ucq_code(&v),
            "seed {seed}: UCQ iso variant changed the canonical code"
        );
        assert_eq!(ucq_key(&q), ucq_key(&v));
        for id in probe_semirings() {
            assert_eq!(
                decide_ucq_dyn(id, &q, &v).answer,
                decide_ucq_dyn(id, &v, &q).answer,
                "seed {seed}, {}: UCQ decision not symmetric under isomorphism",
                id.name()
            );
        }
    }
}

#[test]
fn hom_equivalent_but_not_isomorphic_pairs_get_distinct_keys() {
    // Q_a() :- R(u,v), R(u,w)  and  Q_b() :- R(u,v)  are homomorphically
    // equivalent (collapse w ↦ v one way, include the other), yet not
    // isomorphic — and over Why[X] the pairs (Q_a ⊑ Q_b) and (Q_b ⊑ Q_b)
    // have different answers, so conflating their keys would poison the
    // cache.
    let schema = Schema::with_relations([("R", 2)]);
    let fork = Cq::builder(&schema)
        .atom("R", &["u", "v"])
        .atom("R", &["u", "w"])
        .build();
    let edge = Cq::builder(&schema).atom("R", &["u", "v"]).build();

    assert!(exists_hom(&fork, &edge) && exists_hom(&edge, &fork));
    let (fork_u, edge_u) = (Ucq::single(fork.clone()), Ucq::single(edge.clone()));
    assert!(!are_isomorphic_ucq(&fork_u, &edge_u));

    assert_ne!(cq_code(&fork), cq_code(&edge));
    assert_ne!(cq_key(&fork), cq_key(&edge));

    let why = SemiringId::from_name("Why").expect("registered");
    let conflated = decide_cq_dyn(why, &fork, &edge);
    let reflexive = decide_cq_dyn(why, &edge, &edge);
    assert_ne!(
        conflated.answer, reflexive.answer,
        "the negative pair must actually be decision-relevant"
    );
}

#[test]
fn keys_do_not_depend_on_unused_schema_relations() {
    // The same query formulated over two schemas that register extra
    // relations in different orders must key identically — the service
    // keeps one growing schema across requests.
    let lean = Schema::with_relations([("R", 2)]);
    let fat = Schema::with_relations([("S", 1), ("T", 3), ("R", 2)]);
    let on = |schema: &Schema| {
        Cq::builder(schema)
            .atom("R", &["x", "y"])
            .atom("R", &["y", "z"])
            .build()
    };
    assert_eq!(cq_code(&on(&lean)), cq_code(&on(&fat)));
    assert_eq!(cq_key(&on(&lean)), cq_key(&on(&fat)));
}

#[test]
fn random_nonisomorphic_pairs_rarely_collide() {
    // Distinctness smoke: across a pool of random queries, any two with
    // equal canonical *codes* must genuinely be isomorphic (codes are exact
    // up to the labeling cap at these sizes; 64-bit key collisions are
    // tolerated by the cache's bucket verification, codes must not lie).
    let mut pool: Vec<Cq> = Vec::new();
    for seed in 100..140u64 {
        let mut gen = generator(seed, 0);
        pool.push(gen.cq());
    }
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..pool.len() {
        for j in (i + 1)..pool.len() {
            if cq_code(&pool[i]) == cq_code(&pool[j]) {
                let (a, b) = (Ucq::single(pool[i].clone()), Ucq::single(pool[j].clone()));
                assert!(
                    are_isomorphic_ucq(&a, &b),
                    "queries {i} and {j} share a code but are not isomorphic"
                );
            }
        }
    }
    // Keep the RNG import honest: shuffle-compare one pair end to end.
    let q = pool.swap_remove(0);
    let v = iso_variant(&q, &mut rng);
    assert_eq!(cq_code(&q), cq_code(&v));
}
