//! Experiment E1 (DESIGN.md): the CQ half of Table 1.
//!
//! For each class row we take representative semirings and verify, on a
//! workload of random CQ pairs, that the row's homomorphism criterion agrees
//! with brute-force semantic containment over small instances.  For the
//! finite / effectively-enumerable semirings used here the brute-force check
//! is a sound refuter, and the agreement in both directions exercises both
//! soundness and completeness of the criterion at these sizes.

use annot_core::brute_force::{find_counterexample_cq, BruteForceConfig};
use annot_core::cq as cq_decide;
use annot_core::small_model::cq_contained_small_model;
use annot_query::generator::{GeneratorConfig, QueryGenerator, QueryShape};
use annot_query::Cq;
use annot_semiring::{
    Bool, BoundedNat, Clearance, Fuzzy, Lineage, NatPoly, Semiring, Tropical, Why,
};

fn workload(seed_base: u64, pairs: usize) -> Vec<(Cq, Cq)> {
    let mut out = Vec::new();
    for i in 0..pairs {
        let mut generator = QueryGenerator::new(GeneratorConfig {
            num_atoms: 2 + (i % 2),
            shape: if i % 3 == 0 {
                QueryShape::Chain
            } else {
                QueryShape::Random
            },
            var_pool: 3,
            num_relations: 1,
            seed: seed_base + i as u64,
            ..Default::default()
        });
        let q1 = generator.cq();
        let q2 = generator.cq();
        out.push((q1, q2));
    }
    out
}

fn agreement<K: Semiring>(
    criterion: &dyn Fn(&Cq, &Cq) -> bool,
    pairs: &[(Cq, Cq)],
    config: &BruteForceConfig,
    name: &str,
) {
    for (q1, q2) in pairs {
        let predicted = criterion(q1, q2);
        let counterexample = find_counterexample_cq::<K>(q1, q2, config);
        if predicted {
            assert!(
                counterexample.is_none(),
                "[{}] criterion says contained but semantics disagrees\nQ1 = {}\nQ2 = {}\n{:?}",
                name,
                q1,
                q2,
                counterexample.map(|c| (c.tuple, c.lhs, c.rhs)),
            );
        } else {
            // The criterion is exact for the class, so non-containment must be
            // witnessed semantically ... over *some* instance; our brute force
            // only looks at small ones, so we only require that IF a witness
            // was found, the criterion also said "not contained" (soundness),
            // and we track completeness statistics separately below.
        }
    }
}

/// Soundness in the other direction: whenever brute force finds a
/// counterexample, the (exact) criterion must reject.
fn refutation_soundness<K: Semiring>(
    criterion: &dyn Fn(&Cq, &Cq) -> bool,
    pairs: &[(Cq, Cq)],
    config: &BruteForceConfig,
    name: &str,
) {
    for (q1, q2) in pairs {
        if find_counterexample_cq::<K>(q1, q2, config).is_some() {
            assert!(
                !criterion(q1, q2),
                "[{}] semantics refutes containment but the criterion accepts\nQ1 = {}\nQ2 = {}",
                name,
                q1,
                q2
            );
        }
    }
}

#[test]
fn row_chom_set_semantics() {
    let pairs = workload(100, 14);
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    agreement::<Bool>(&cq_decide::contained_chom, &pairs, &config, "C_hom/B");
    refutation_soundness::<Bool>(&cq_decide::contained_chom, &pairs, &config, "C_hom/B");
    // B₁ (saturating bags with cutoff 1) is isomorphic to B.
    agreement::<BoundedNat<1>>(&cq_decide::contained_chom, &pairs, &config, "C_hom/B1");
    refutation_soundness::<BoundedNat<1>>(&cq_decide::contained_chom, &pairs, &config, "C_hom/B1");
}

#[test]
fn row_chom_lattice_semirings() {
    let pairs = workload(200, 10);
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    agreement::<Fuzzy>(&cq_decide::contained_chom, &pairs, &config, "C_hom/Fuzzy");
    refutation_soundness::<Fuzzy>(&cq_decide::contained_chom, &pairs, &config, "C_hom/Fuzzy");
    agreement::<Clearance>(&cq_decide::contained_chom, &pairs, &config, "C_hom/Access");
    refutation_soundness::<Clearance>(&cq_decide::contained_chom, &pairs, &config, "C_hom/Access");
}

#[test]
fn row_chcov_lineage() {
    let pairs = workload(300, 12);
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    agreement::<Lineage>(
        &cq_decide::contained_chcov,
        &pairs,
        &config,
        "C_hcov/Lin[X]",
    );
    refutation_soundness::<Lineage>(
        &cq_decide::contained_chcov,
        &pairs,
        &config,
        "C_hcov/Lin[X]",
    );
}

#[test]
fn row_csur_why_provenance() {
    let pairs = workload(400, 12);
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    agreement::<Why>(&cq_decide::contained_csur, &pairs, &config, "C_sur/Why[X]");
    refutation_soundness::<Why>(&cq_decide::contained_csur, &pairs, &config, "C_sur/Why[X]");
}

#[test]
fn row_cbi_provenance_polynomials() {
    let pairs = workload(500, 10);
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    agreement::<NatPoly>(&cq_decide::contained_cbi, &pairs, &config, "C_bi/N[X]");
    refutation_soundness::<NatPoly>(&cq_decide::contained_cbi, &pairs, &config, "C_bi/N[X]");
}

#[test]
fn row_small_model_tropical() {
    let pairs = workload(600, 10);
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    let criterion = |q1: &Cq, q2: &Cq| cq_contained_small_model::<Tropical>(q1, q2);
    agreement::<Tropical>(&criterion, &pairs, &config, "S¹/T⁺ small model");
    refutation_soundness::<Tropical>(&criterion, &pairs, &config, "S¹/T⁺ small model");
}

#[test]
fn bag_semantics_bounds_are_consistent() {
    // For N no exact criterion exists; check that the sufficient/necessary
    // bounds never contradict the semantics.
    let pairs = workload(700, 12);
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    for (q1, q2) in &pairs {
        match cq_decide::contained_bag_bounds(q1, q2) {
            Some(true) => assert!(
                find_counterexample_cq::<annot_semiring::Natural>(q1, q2, &config).is_none(),
                "sufficient bound contradicted semantically: {} vs {}",
                q1,
                q2
            ),
            Some(false) => { /* refuted syntactically; nothing to check */ }
            None => { /* undecided */ }
        }
    }
}
