//! Empirical decisiveness certificates for [`Semiring::decisive_samples`].
//!
//! The brute-force oracle refutes `Q₁ ⊑_K Q₂` by exhibiting an instance
//! whose output annotations violate `¹_K`; annotations enter that check
//! only through evaluations of provenance polynomials (Prop. 3.2).  A
//! *decisive* sample subset must therefore refute exactly the ordered
//! polynomial pairs the full sample set refutes — for every pair `(p₁, p₂)`
//! and every assignment of full samples violating `Eval(p₁) ¹ Eval(p₂)`,
//! some assignment of decisive samples must violate it too.
//!
//! This suite certifies that property for every shipped semiring over a
//! seeded sweep of random polynomial pairs plus directed pairs known to
//! need "awkward" elements (non-idempotent samples, coefficient humps).
//! It also contains a sensitivity check: a deliberately over-reduced
//! sample set for `N` must *fail* the certificate, so a wrongly dropped
//! element cannot slip through silently.

use annot_polynomial::{Monomial, Polynomial, Var};
use annot_semiring::{
    eval_polynomial, Bool, BoolPoly, BoundedNat, Clearance, Fuzzy, Lineage, NatPoly, Natural,
    PosBool, Schedule, Semiring, Trio, Tropical, Viterbi, Why,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Number of random polynomial pairs per semiring.  Each pair is checked
/// exhaustively over all sample assignments, so this dominates the suite's
/// runtime; 200 pairs × ≤ 3 variables keeps it under a second per semiring
/// in release builds while exercising far more shapes than the oracle's
/// query workloads do.
const RANDOM_PAIRS: usize = 200;

/// Variables per random polynomial (assignments are exhaustive, `sᵛ`).
const VARS: u32 = 3;

fn random_poly(rng: &mut StdRng, vars: u32) -> Polynomial {
    let terms = rng.gen_range(1usize..=3);
    let mut p = Polynomial::zero();
    for _ in 0..terms {
        let mut m = Monomial::one();
        for v in 0..vars {
            let e = rng.gen_range(0u32..=2);
            if e > 0 {
                m = m.mul(&Monomial::var_pow(Var(v), e));
            }
        }
        p.add_term(m, rng.gen_range(1u64..=3));
    }
    p
}

/// Directed pairs that historically need specific sample elements: the
/// squaring pair (refuted only by non-`⊗`-idempotent elements), the
/// doubling pair (refuted only where coefficients matter), and the
/// degree-2-vs-3 "hump" pair `10x² ⋢ x³ + 21x`, which over `N` is violated
/// only for `3 < x < 7` — a sole-refuter witness for `Natural(5)`.
fn directed_pairs() -> Vec<(Polynomial, Polynomial)> {
    let x = Polynomial::var(Var(0));
    let y = Polynomial::var(Var(1));
    // `c·x² ⋢ x³ + a·x` is violated exactly where `x(x - r₁)(x - r₂) < 0`
    // for `{r₁, r₂}` the roots of `x² - c·x + a`: a refutation *hump*
    // strictly between the roots.  Placing the roots around a single sample
    // makes that sample the sole refuter.
    let hump = |c: u64, a: u64| {
        let mut lhs = Polynomial::zero();
        lhs.add_term(Monomial::var_pow(Var(0), 2), c);
        let mut rhs = Polynomial::zero();
        rhs.add_term(Monomial::var_pow(Var(0), 3), 1);
        rhs.add_term(Monomial::var(Var(0)), a);
        (lhs, rhs)
    };
    vec![
        (x.pow(2), x.clone()),
        (x.clone(), x.pow(2)),
        (x.plus(&x), x.clone()),
        (x.times(&y), x.plus(&y)),
        (x.plus(&y), x.times(&y)),
        (x.plus(&y).pow(2), x.pow(2).plus(&y.pow(2))),
        hump(10, 21), // roots 3, 7: over `N`, only the sample 5 refutes
        hump(14, 45), // roots 5, 9: over `N`, only the sample 7 refutes
    ]
}

/// Whether some exhaustive assignment of `samples` to the first `vars`
/// variables refutes `Eval(p₁) ¹ Eval(p₂)`.
fn refuted_by<K: Semiring>(samples: &[K], p1: &Polynomial, p2: &Polynomial, vars: u32) -> bool {
    let s = samples.len();
    let total = s.pow(vars);
    for code in 0..total {
        let mut rest = code;
        let assignment: Vec<K> = (0..vars)
            .map(|_| {
                let a = samples[rest % s].clone();
                rest /= s;
                a
            })
            .collect();
        let val = |v: Var| assignment[v.0 as usize].clone();
        if !eval_polynomial(p1, &val).leq(&eval_polynomial(p2, &val)) {
            return true;
        }
    }
    false
}

/// Runs the certificate for one semiring: over directed + random pairs,
/// `reduced` must refute exactly what `full` refutes.  Returns the first
/// disagreeing pair, if any.
fn certificate<K: Semiring>(
    full: &[K],
    reduced: &[K],
    seed: u64,
) -> Option<(Polynomial, Polynomial)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = directed_pairs();
    for _ in 0..RANDOM_PAIRS {
        let p1 = random_poly(&mut rng, VARS);
        let p2 = random_poly(&mut rng, VARS);
        pairs.push((p1, p2));
    }
    for (p1, p2) in pairs {
        if refuted_by(full, &p1, &p2, VARS) != refuted_by(reduced, &p1, &p2, VARS) {
            return Some((p1, p2));
        }
    }
    None
}

macro_rules! certify {
    ($($name:ident: $k:ty,)*) => {$(
        #[test]
        fn $name() {
            let full = <$k>::sample_elements();
            let reduced = <$k>::decisive_samples();
            for r in &reduced {
                assert!(
                    full.contains(r),
                    "{}: decisive sample {r:?} is not a sample element",
                    <$k>::NAME
                );
            }
            assert!(
                reduced.iter().any(|r| !r.is_zero()),
                "{}: decisive set has no non-zero element",
                <$k>::NAME
            );
            if let Some((p1, p2)) = certificate::<$k>(&full, &reduced, 0x9e37) {
                panic!(
                    "{}: decisive subset loses the refutation of {p1:?} ¹ {p2:?}",
                    <$k>::NAME
                );
            }
        }
    )*};
}

certify! {
    bool_decisive: Bool,
    posbool_decisive: PosBool,
    fuzzy_decisive: Fuzzy,
    viterbi_decisive: Viterbi,
    clearance_decisive: Clearance,
    lineage_decisive: Lineage,
    tropical_decisive: Tropical,
    schedule_decisive: Schedule,
    why_decisive: Why,
    trio_decisive: Trio,
    natpoly_decisive: NatPoly,
    boolpoly_decisive: BoolPoly,
    natural_decisive: Natural,
    bounded1_decisive: BoundedNat<1>,
    bounded2_decisive: BoundedNat<2>,
    bounded3_decisive: BoundedNat<3>,
    bounded5_decisive: BoundedNat<5>,
}

/// Sensitivity: the certificate must catch a wrongly dropped sample.  Over
/// `N`, `10x² ¹ x³ + 21x` is violated only for `3 < x < 7`, so `Natural(5)`
/// is the sole refuter within the sample range — a "reduced" set without it
/// must fail.
#[test]
fn over_reduced_natural_samples_fail_the_certificate() {
    let full = Natural::sample_elements();
    let bogus = vec![Natural(0), Natural(1), Natural(2), Natural(3), Natural(7)];
    assert!(
        certificate::<Natural>(&full, &bogus, 0x9e37).is_some(),
        "dropping Natural(5) must lose the hump-pair refutation"
    );
}

/// Exploration harness used to select the shipped reduced sets; kept
/// ignored so the choice stays reproducible.  Prints, for each candidate
/// semiring, which single samples can be dropped without losing any
/// refutation over the certificate workload.
#[test]
#[ignore = "exploration harness, run manually with --ignored --nocapture"]
fn explore_droppable_samples() {
    fn droppable<K: Semiring>() {
        let full = K::sample_elements();
        for (i, e) in full.iter().enumerate() {
            if e.is_zero() || e.is_one() {
                continue;
            }
            let mut reduced = full.clone();
            reduced.remove(i);
            let verdict = match certificate::<K>(&full, &reduced, 0x9e37) {
                None => "droppable",
                Some(_) => "needed",
            };
            println!("{}: {e:?} -> {verdict}", K::NAME);
        }
    }
    droppable::<Why>();
    droppable::<Trio>();
    droppable::<PosBool>();
    droppable::<Lineage>();
    droppable::<NatPoly>();
    droppable::<BoolPoly>();
    droppable::<Natural>();
    droppable::<Fuzzy>();
    droppable::<Viterbi>();
    droppable::<Tropical>();
    droppable::<Schedule>();
}

/// Joint-candidate exploration: a set of individually droppable samples is
/// not necessarily jointly droppable, so the shipped subsets are validated
/// here as wholes, over a much heavier random workload (multiple seeds).
#[test]
#[ignore = "exploration harness, run manually with --ignored --nocapture"]
fn explore_joint_candidates() {
    fn joint<K: Semiring>(label: &str, keep: &[usize]) {
        let full = K::sample_elements();
        let reduced: Vec<K> = keep.iter().map(|&i| full[i].clone()).collect();
        let mut lost = 0usize;
        for seed in [0x9e37u64, 0x51ed, 0xc0de, 0xfeed, 0xbeef] {
            if certificate::<K>(&full, &reduced, seed).is_some() {
                lost += 1;
            }
        }
        println!(
            "{} {label} keep={keep:?} -> {}",
            K::NAME,
            if lost == 0 {
                "ok".to_string()
            } else {
                format!("LOSES ({lost}/5 seeds)")
            }
        );
    }
    // Why full: [0, 1, {x}, {y}, x+y, xy, x+1]
    joint::<Why>("drop xy,x+1", &[0, 1, 2, 3, 4]);
    // Lineage full: [⊥, 1, {x}, {y}, {x,y}]
    joint::<Lineage>("drop {x,y}", &[0, 1, 2, 3]);
    // PosBool full: [0, 1, x, y, x+y, xy]
    joint::<PosBool>("drop x+y,xy", &[0, 1, 2, 3]);
    // Trio full: [0, 1, x, y, x+y, xy, 2x]
    joint::<Trio>("drop xy", &[0, 1, 2, 3, 4, 6]);
    joint::<Trio>("drop 2x", &[0, 1, 2, 3, 4, 5]);
    // NatPoly full: [0, 1, 2, x, y, x+y, xy, x²]
    joint::<NatPoly>("drop 2,x+y,xy,x²", &[0, 1, 3, 4]);
    // BoolPoly full: [0, 1, {x}, {y}, {x,y}, {xy}, {x²}]
    joint::<BoolPoly>("drop {x,y},{xy},{x²}", &[0, 1, 2, 3]);
    // Natural full: [0, 1, 2, 3, 5, 7] — the hump pairs must now pin both
    // 5 and 7 as sole refuters.
    joint::<Natural>("drop 7", &[0, 1, 2, 3, 4]);
    joint::<Natural>("drop 5", &[0, 1, 2, 3, 5]);
}
