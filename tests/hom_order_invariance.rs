//! Order-invariance of the homomorphism search engine.
//!
//! The atom-selection heuristic ([`AtomOrder`]) must never change *what* the
//! search finds — only how fast it finds it.  This suite generates seeded
//! random CQ and CCQ pairs and asserts that the `Syntactic` order and the
//! dynamic `MostConstrained` order (most-constrained-next with forward
//! checking) agree on
//!
//! * existence (`exists`),
//! * the number of enumerated homomorphisms (`for_each` visits each complete
//!   mapping exactly once, so the counts must be equal),
//!
//! across plain, occurrence-injective, pinned and inequality-preserving
//! (CCQ) searches.

use annot_hom::{AtomOrder, HomSearch, SearchOptions};
use annot_query::generator::{GeneratorConfig, QueryGenerator, QueryShape};
use annot_query::{Ccq, Cq};

const ORDERS: [AtomOrder; 2] = [AtomOrder::Syntactic, AtomOrder::MostConstrained];

fn generated_pair(seed: u64) -> (Cq, Cq) {
    let mut generator = QueryGenerator::new(GeneratorConfig {
        num_atoms: 2 + (seed % 2) as usize,
        shape: QueryShape::Random,
        var_pool: 3 + (seed % 2) as usize,
        num_relations: 1 + (seed % 2) as usize,
        seed,
        ..Default::default()
    });
    (generator.cq(), generator.cq())
}

fn count_homs(search: &HomSearch<'_>) -> usize {
    let mut count = 0usize;
    search.for_each(&mut |_| count += 1);
    count
}

#[test]
fn orders_agree_on_plain_and_injective_searches() {
    for seed in 0..60u64 {
        let (q1, q2) = generated_pair(seed);
        for occurrence_injective in [false, true] {
            let results: Vec<(bool, usize)> = ORDERS
                .iter()
                .map(|&order| {
                    let options = SearchOptions {
                        occurrence_injective,
                        order,
                    };
                    let exists = HomSearch::new(&q2, &q1)
                        .with_options(options.clone())
                        .exists();
                    let count = count_homs(&HomSearch::new(&q2, &q1).with_options(options));
                    (exists, count)
                })
                .collect();
            assert_eq!(
                results[0], results[1],
                "orders disagree (injective={occurrence_injective}) on {} vs {}",
                q2, q1
            );
            // Internal consistency: existence iff the enumeration is
            // non-empty.
            assert_eq!(results[0].0, results[0].1 > 0);
        }
    }
}

#[test]
fn orders_agree_on_pinned_searches() {
    for seed in 100..140u64 {
        let (q1, q2) = generated_pair(seed);
        for source_index in 0..q2.num_atoms() {
            for target_index in 0..q1.num_atoms() {
                let verdicts: Vec<bool> = ORDERS
                    .iter()
                    .map(|&order| {
                        let options = SearchOptions {
                            occurrence_injective: false,
                            order,
                        };
                        HomSearch::new(&q2, &q1)
                            .with_options(options)
                            .with_pin(source_index, target_index)
                            .exists()
                    })
                    .collect();
                assert_eq!(
                    verdicts[0], verdicts[1],
                    "pinned ({source_index} ↦ {target_index}) orders disagree on {} vs {}",
                    q2, q1
                );
            }
        }
    }
}

#[test]
fn orders_agree_on_ccq_searches() {
    for seed in 200..260u64 {
        let (q1, q2) = generated_pair(seed);
        let c1 = Ccq::completion_of(q1);
        let c2 = Ccq::completion_of(q2);
        for occurrence_injective in [false, true] {
            let results: Vec<(bool, usize)> = ORDERS
                .iter()
                .map(|&order| {
                    let options = SearchOptions {
                        occurrence_injective,
                        order,
                    };
                    let exists = HomSearch::new_ccq(&c2, &c1)
                        .with_options(options.clone())
                        .exists();
                    let count = count_homs(&HomSearch::new_ccq(&c2, &c1).with_options(options));
                    (exists, count)
                })
                .collect();
            assert_eq!(
                results[0],
                results[1],
                "CCQ orders disagree (injective={occurrence_injective}) on {} vs {}",
                c2.cq(),
                c1.cq()
            );
        }
    }
}
