//! Randomized stress suite for the dense, relation-indexed [`EvalState`].
//!
//! PR 5 rewrote `EvalState`'s fact storage from a `HashMap<RelId, Vec<…>>`
//! to dense per-relation flat arenas with `(RelId, u32 len)` undo frames.
//! This suite drives seeded randomized push/pop walks — biased towards
//! pushes, with zero-annotation no-op frames and tombstone-revival episodes
//! (pop a fact, then re-push the same row with a different annotation)
//! interleaved — and checks the maintained **row-level** outputs
//! ([`EvalState::outputs_rows`]) against the one-shot
//! `eval_*_all_outputs_rows` family after **every** step, across all four
//! query shapes (CQ / CCQ / UCQ / DUCQ) and both dispatch classes of
//! annotation domain (scalar: `N`, `T⁺`; heap-carrying: `Why[X]`, `N[X]`).
//!
//! The row-level comparison is exact because the state, the mirror
//! instance and the one-shot evaluators all share one interner: clones of
//! a [`Schema`] share its [`Domain`], so equal tuples intern to equal
//! [`ValueId`]s on every side.

use annot_query::eval::{
    eval_ccq_all_outputs_rows, eval_cq_all_outputs_rows, eval_ducq_all_outputs_rows,
    eval_ucq_all_outputs_rows, EvalState,
};
use annot_query::{Ccq, Cq, DbValue, Ducq, IdTuple, Instance, QVar, RelId, Schema, Tuple, Ucq};
use annot_semiring::{NatPoly, Natural, Semiring, Tropical, Why};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn schema() -> Schema {
    Schema::with_relations([("R", 2), ("S", 1)])
}

/// One step of the walk as recorded on the shadow stack.
type Fact<K> = (RelId, Tuple, K);

/// Rebuilds the instance equivalent to the current fact stack.  Annotations
/// accumulate per row exactly like [`EvalState::push_fact`]
/// (`add_annotation`), and zero pushes are the same no-op on both sides.
fn mirror_instance<K: Semiring>(schema: &Schema, stack: &[Fact<K>]) -> Instance<K> {
    let mut instance = Instance::new(schema.clone());
    for (rel, tuple, k) in stack {
        instance.add_annotation(*rel, tuple.clone(), k.clone());
    }
    instance
}

/// Drives `state` through `steps` seeded random push/pop steps over the
/// given schema and checks its row-level outputs against `oneshot` of the
/// mirror instance after every step.
///
/// The walk is biased towards pushes (so depth grows), draws annotations
/// from the **full** sample list — including `0`, exercising the no-op
/// undo frames — over a 2-value domain (so rows repeat and annotations
/// accumulate), and with a dedicated move pops the newest fact and
/// immediately re-pushes its row under a different annotation: the
/// tombstone-revival episode of the brute-force enumerators, driven
/// through the undo log.
fn random_walk<K: Semiring>(
    seed: u64,
    steps: usize,
    schema: &Schema,
    state: &mut EvalState<'_, K>,
    oneshot: &dyn Fn(&Instance<K>) -> BTreeMap<IdTuple, K>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<K> = K::sample_elements();
    let rels: Vec<RelId> = schema.rel_ids().collect();
    let mut stack: Vec<Fact<K>> = Vec::new();
    let random_fact = |rng: &mut StdRng| -> (RelId, Tuple) {
        let rel = rels[rng.gen_range(0..rels.len())];
        let tuple: Tuple = (0..schema.arity(rel))
            .map(|_| DbValue::Int(rng.gen_range(0..2i64)))
            .collect();
        (rel, tuple)
    };
    for step in 0..steps {
        let roll = rng.gen_range(0..10u32);
        if stack.is_empty() || roll < 5 {
            // Push a random fact (possibly zero-annotated).
            let (rel, tuple) = random_fact(&mut rng);
            let k = samples[rng.gen_range(0..samples.len())].clone();
            state.push_fact(rel, tuple.clone(), k.clone());
            stack.push((rel, tuple, k));
        } else if roll < 8 {
            state.pop_fact();
            stack.pop();
        } else {
            // Tombstone revival: retract the newest fact and revive its row
            // under a different annotation.
            let (rel, tuple, old) = stack.pop().expect("non-empty stack");
            state.pop_fact();
            let replacement = samples
                .iter()
                .find(|k| !k.is_zero() && **k != old)
                .expect("samples contain at least two distinct non-zero elements")
                .clone();
            state.push_fact(rel, tuple.clone(), replacement.clone());
            stack.push((rel, tuple, replacement));
        }
        assert_eq!(state.depth(), stack.len(), "depth diverged at step {step}");
        let expected = oneshot(&mirror_instance(schema, &stack));
        assert_eq!(
            *state.outputs_rows(),
            expected,
            "{}: row-level outputs diverged at step {step} (depth {})",
            K::NAME,
            stack.len()
        );
    }
    // Unwind completely: the undo log must restore the initial outputs.
    while state.depth() > 0 {
        state.pop_fact();
        stack.pop();
        let expected = oneshot(&mirror_instance(schema, &stack));
        assert_eq!(
            *state.outputs_rows(),
            expected,
            "{}: unwind diverged",
            K::NAME
        );
    }
}

// Push/pop walk length; a short walk under Miri (interpreter overhead),
// still deep enough to exercise push, undo and full unwind.
#[cfg(not(miri))]
const STEPS: usize = 70;
#[cfg(miri)]
const STEPS: usize = 10;

// -- CQ ---------------------------------------------------------------------

fn cq_query(schema: &Schema) -> Cq {
    Cq::builder(schema)
        .free(&["x"])
        .atom("R", &["x", "y"])
        .atom("S", &["y"])
        .build()
}

fn stress_cq<K: Semiring>(seed: u64) {
    let schema = schema();
    let q = cq_query(&schema);
    let mut state: EvalState<'_, K> = EvalState::for_cq(&q);
    random_walk(seed, STEPS, &schema, &mut state, &|i| {
        eval_cq_all_outputs_rows(&q, i)
    });
}

#[test]
fn stress_cq_natural() {
    stress_cq::<Natural>(0xE1);
}

#[test]
fn stress_cq_why() {
    stress_cq::<Why>(0xE2);
}

// -- CCQ --------------------------------------------------------------------

fn ccq_query(schema: &Schema) -> Ccq {
    let base = Cq::builder(schema)
        .atom("R", &["x", "y"])
        .atom("R", &["z", "w"])
        .build();
    Ccq::new(base, [(QVar(0), QVar(2)), (QVar(1), QVar(3))])
}

fn stress_ccq<K: Semiring>(seed: u64) {
    let schema = schema();
    let q = ccq_query(&schema);
    let mut state: EvalState<'_, K> = EvalState::for_ccq(&q);
    random_walk(seed, STEPS, &schema, &mut state, &|i| {
        eval_ccq_all_outputs_rows(&q, i)
    });
}

#[test]
fn stress_ccq_tropical() {
    stress_ccq::<Tropical>(0xE3);
}

#[test]
fn stress_ccq_nat_poly() {
    stress_ccq::<NatPoly>(0xE4);
}

// -- UCQ --------------------------------------------------------------------

fn ucq_query(schema: &Schema) -> Ucq {
    let q1 = Cq::builder(schema).free(&["v"]).atom("S", &["v"]).build();
    let q2 = Cq::builder(schema)
        .free(&["x"])
        .atom("R", &["x", "y"])
        .atom("S", &["y"])
        .build();
    Ucq::new([q1, q2])
}

fn stress_ucq<K: Semiring>(seed: u64) {
    let schema = schema();
    let q = ucq_query(&schema);
    let mut state: EvalState<'_, K> = EvalState::for_ucq(&q);
    random_walk(seed, STEPS, &schema, &mut state, &|i| {
        eval_ucq_all_outputs_rows(&q, i)
    });
}

#[test]
fn stress_ucq_natural() {
    stress_ucq::<Natural>(0xE5);
}

#[test]
fn stress_ucq_why() {
    stress_ucq::<Why>(0xE6);
}

// -- DUCQ -------------------------------------------------------------------

fn ducq_query(schema: &Schema) -> Ducq {
    let ccq1 = ccq_query(schema);
    let ccq2 = Ccq::from_cq(
        Cq::builder(schema)
            .atom("R", &["x", "y"])
            .atom("S", &["y"])
            .build(),
    );
    Ducq::new([ccq1, ccq2])
}

fn stress_ducq<K: Semiring>(seed: u64) {
    let schema = schema();
    let q = ducq_query(&schema);
    let mut state: EvalState<'_, K> = EvalState::for_ducq(&q);
    random_walk(seed, STEPS, &schema, &mut state, &|i| {
        eval_ducq_all_outputs_rows(&q, i)
    });
}

#[test]
fn stress_ducq_tropical() {
    stress_ducq::<Tropical>(0xE7);
}

#[test]
fn stress_ducq_nat_poly() {
    stress_ducq::<NatPoly>(0xE8);
}

/// Relations the tracked queries never mention still participate in the
/// dense fact store (their `RelId` indexes past the query schema's tables
/// at first sight): pushes to them must maintain outputs, undo cleanly,
/// and interleave with tracked pushes.
#[test]
fn stress_untracked_relations_round_trip() {
    let schema = Schema::with_relations([("R", 2), ("S", 1), ("T", 3)]);
    let q = Cq::builder(&schema)
        .free(&["x"])
        .atom("R", &["x", "y"])
        .build();
    let mut state: EvalState<'_, Natural> = EvalState::for_cq(&q);
    let r = schema.relation("R").unwrap();
    let t = schema.relation("T").unwrap();
    state.push_fact(t, vec![1.into(), 2.into(), 3.into()], Natural(7));
    assert!(state.outputs_rows().is_empty());
    state.push_fact(r, vec![1.into(), 2.into()], Natural(2));
    assert_eq!(state.outputs_rows().len(), 1);
    state.push_fact(t, vec![3.into(), 2.into(), 1.into()], Natural(0));
    assert_eq!(state.outputs_rows().len(), 1);
    state.pop_fact();
    state.pop_fact();
    state.pop_fact();
    assert!(state.outputs_rows().is_empty());
    assert_eq!(state.depth(), 0);
}
