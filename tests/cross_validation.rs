//! Property-based cross-validation (experiments E5/E7 of DESIGN.md).
//!
//! Uses proptest to generate random polynomials and random small queries and
//! checks the structural invariants the paper relies on: semiring laws under
//! evaluation (Prop. 3.2), homogeneity of CQ-admissible polynomials
//! (Sec. 4.5), equivalence of a query with its complete description (Sec. 5),
//! and the universal sufficient/necessary homomorphism bounds (Sec. 3.3,
//! 4.3).

use annot_core::brute_force::{find_counterexample_cq, BruteForceConfig};
use annot_hom::kinds;
use annot_polynomial::admissible::is_cq_admissible;
use annot_polynomial::{Monomial, Polynomial, Var};
use annot_query::complete::complete_description_cq;
use annot_query::eval::{eval_boolean_cq, eval_cq, eval_ducq};
use annot_query::generator::{GeneratorConfig, QueryGenerator, QueryShape};
use annot_query::{CanonicalInstance, Instance};
use annot_semiring::{eval_polynomial, Natural, Semiring, Tropical, Why};
use proptest::prelude::*;

/// Strategy: a random polynomial over up to 3 variables, degree ≤ 3,
/// coefficients ≤ 3.
fn polynomial_strategy() -> impl Strategy<Value = Polynomial> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u32..3, 0..3), // variable indices of a monomial
            1u64..4,                                   // coefficient
        ),
        0..4,
    )
    .prop_map(|terms| {
        Polynomial::from_terms(terms.into_iter().map(|(vars, coeff)| {
            (
                Monomial::from_vars(vars.into_iter().map(Var)),
                coeff,
            )
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prop. 3.2: evaluation into N (bag semantics) is a semiring morphism.
    #[test]
    fn evaluation_is_a_morphism(p in polynomial_strategy(), q in polynomial_strategy(),
                                a in 0u64..4, b in 0u64..4, c in 0u64..4) {
        let valuation = move |v: Var| Natural(match v.0 { 0 => a, 1 => b, _ => c });
        let ep = eval_polynomial::<Natural>(&p, &valuation);
        let eq = eval_polynomial::<Natural>(&q, &valuation);
        prop_assert_eq!(eval_polynomial::<Natural>(&p.plus(&q), &valuation), ep.add(&eq));
        prop_assert_eq!(eval_polynomial::<Natural>(&p.times(&q), &valuation), ep.mul(&eq));
    }

    /// Polynomial arithmetic is commutative/associative/distributive.
    #[test]
    fn polynomial_ring_laws(p in polynomial_strategy(), q in polynomial_strategy(),
                            r in polynomial_strategy()) {
        prop_assert_eq!(p.plus(&q), q.plus(&p));
        prop_assert_eq!(p.times(&q), q.times(&p));
        prop_assert_eq!(p.plus(&q).plus(&r), p.plus(&q.plus(&r)));
        prop_assert_eq!(p.times(&q).times(&r), p.times(&q.times(&r)));
        prop_assert_eq!(p.times(&q.plus(&r)), p.times(&q).plus(&p.times(&r)));
    }

    /// Every CQ-admissible polynomial is homogeneous and its coefficients are
    /// bounded by the number of orderings of the monomial (Sec. 4.5).
    #[test]
    fn admissible_polynomials_are_homogeneous(p in polynomial_strategy()) {
        if is_cq_admissible(&p) {
            prop_assert!(p.is_homogeneous());
            for (m, c) in p.terms() {
                prop_assert!(c <= m.num_orderings());
            }
        }
    }

    /// The tropical order is a preorder compatible with addition (positivity
    /// requirement (C4) at the polynomial level).
    #[test]
    fn tropical_order_is_monotone(p in polynomial_strategy(), q in polynomial_strategy(),
                                  r in polynomial_strategy()) {
        use annot_polynomial::leq_min_plus;
        prop_assert!(leq_min_plus(&p, &p));
        if leq_min_plus(&p, &q) {
            prop_assert!(leq_min_plus(&p.plus(&r), &q.plus(&r)));
        }
    }
}

/// Random CQ workloads: a query is always equivalent to its complete
/// description (Q ≡_K ⟨Q⟩) on random instances, for an idempotent and a
/// non-idempotent semiring.
#[test]
fn complete_description_equivalence_on_random_queries() {
    for seed in 0..30u64 {
        let mut generator = QueryGenerator::new(GeneratorConfig {
            num_atoms: 2 + (seed % 2) as usize,
            shape: QueryShape::Random,
            var_pool: 3,
            num_relations: 1,
            seed,
            ..Default::default()
        });
        let q = generator.cq();
        let description = complete_description_cq(&q);
        let instance: Instance<Natural> = generator.instance(3, 5);
        let direct = eval_boolean_cq(&q, &instance);
        let via_description = eval_ducq(&description, &instance, &vec![]);
        assert_eq!(direct, via_description, "Q ≢ ⟨Q⟩ for {}", q);

        let tropical: Instance<Tropical> =
            instance.map_annotations(&|n| Tropical::Finite(n.0.min(20)));
        assert_eq!(
            eval_boolean_cq(&q, &tropical),
            eval_ducq(&description, &tropical, &vec![])
        );
    }
}

/// The universal bounds of the paper on random workloads:
/// `Q₂ ⤖ Q₁ ⇒ Q₁ ⊆_K Q₂` and `Q₁ ⊆_K Q₂ ⇒ Q₂ → Q₁` for every semiring.
#[test]
fn universal_bounds_on_random_queries() {
    let config = BruteForceConfig { domain_size: 2, max_support: 3 };
    for seed in 100..130u64 {
        let mut generator = QueryGenerator::new(GeneratorConfig {
            num_atoms: 2,
            shape: QueryShape::Random,
            var_pool: 3,
            num_relations: 1,
            seed,
            ..Default::default()
        });
        let q1 = generator.cq();
        let q2 = generator.cq();
        // Sufficiency of bijective homomorphisms, tested over Why[X]
        // (idempotent) and N (non-idempotent).
        if kinds::exists_bijective_hom(&q2, &q1) {
            assert!(find_counterexample_cq::<Why>(&q1, &q2, &config).is_none());
            assert!(find_counterexample_cq::<Natural>(&q1, &q2, &config).is_none());
        }
        // Necessity of plain homomorphisms: a semantic counterexample over
        // *any* semiring implies no containment, which implies nothing
        // syntactically; but conversely if no homomorphism Q2 → Q1 exists
        // there must be a B-counterexample (the canonical instance one), so
        // check that.
        if !kinds::exists_hom(&q2, &q1) {
            assert!(
                find_counterexample_cq::<annot_semiring::Bool>(&q1, &q2, &config).is_some()
                    || q1.num_vars() > 2,
                "no homomorphism but no small Boolean counterexample: {} vs {}",
                q1,
                q2
            );
        }
    }
}

/// Evaluating a CQ over the canonical instance of another CQ realises the
/// homomorphism criterion: Q2 → Q1 iff Q2 evaluates to a non-zero polynomial
/// over ⟦Q1⟧ with the identity output tuple (Chandra–Merlin via provenance).
#[test]
fn canonical_instances_capture_homomorphisms() {
    for seed in 200..240u64 {
        let mut generator = QueryGenerator::new(GeneratorConfig {
            num_atoms: 2,
            shape: QueryShape::Random,
            var_pool: 3,
            num_relations: 1,
            seed,
            ..Default::default()
        });
        let q1 = generator.cq();
        let q2 = generator.cq();
        let canonical = CanonicalInstance::of_cq(&q1);
        let value = eval_cq(&q2, canonical.instance(), &canonical.identity_tuple(&q2));
        let hom = kinds::exists_hom(&q2, &q1);
        // Both queries here are Boolean, so the identity tuple is empty and
        // the equivalence is exact.
        assert_eq!(hom, !value.polynomial().is_zero(), "{} vs {}", q1, q2);
    }
}
