//! Randomized cross-validation of the syntactic deciders against brute-force
//! semantics.
//!
//! Two layers of checks, all driven by fixed seeds so failures reproduce:
//!
//! 1. **Structural invariants** on random polynomials (previously expressed
//!    with proptest; rewritten as seeded loops because the build environment
//!    vendors its dependencies): semiring laws under evaluation (Prop. 3.2),
//!    homogeneity of CQ-admissible polynomials (Sec. 4.5), monotonicity of
//!    the tropical order.
//!
//! 2. **The oracle harness**: for one representative semiring per class of
//!    Table 1 (`B`, `Lin[X]`, `T⁺`, `Viterbi`, `Why[X]`, `N[X]`, `N`), generate ≥100
//!    random CQ pairs and UCQ pairs via [`annot_query::generator`] and check
//!    the class-dispatching deciders of [`annot_core::decide`] against the
//!    exhaustive semantic search of [`annot_core::brute_force`] over small
//!    domains, in the two directions that are logically valid for *every*
//!    sample bound: a `Contained` verdict must never coexist with a semantic
//!    counterexample, and a semantic counterexample must force a
//!    `NotContained` verdict from the exact-criterion deciders.

use annot_core::brute_force::{
    find_counterexample_cq, find_counterexample_ducq, find_counterexample_ducq_naive,
    find_counterexample_ucq, BruteForceConfig,
};
use annot_core::classes::ClassifiedSemiring;
use annot_core::decide::{decide_cq, decide_ucq, Decision, Verdict};
use annot_hom::kinds;
use annot_polynomial::admissible::is_cq_admissible;
use annot_polynomial::{leq_min_plus, Monomial, Polynomial, Var};
use annot_query::complete::complete_description_cq;
use annot_query::eval::{eval_boolean_cq, eval_cq, eval_ducq};
use annot_query::generator::{GeneratorConfig, QueryGenerator, QueryShape};
use annot_query::{CanonicalInstance, Cq, Ducq, Instance, Ucq};
use annot_semiring::{
    eval_polynomial, Bool, Lineage, NatPoly, Natural, Semiring, Tropical, Viterbi, Why,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Parallel case driver
// ---------------------------------------------------------------------------

/// Reads a numeric harness knob from the environment (`0`/unset = default).
fn env_knob(name: &str, default: usize) -> usize {
    match std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        None | Some(0) => default,
        Some(n) => n,
    }
}

/// Worker threads for the oracle harness (`ANNOT_XV_THREADS`, default: the
/// available parallelism).  The per-semiring `#[test]`s already parallelise
/// at the libtest level, so the default stays modest on big machines.
fn xv_threads() -> usize {
    env_knob(
        "ANNOT_XV_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4),
    )
}

/// Cases handed to a worker per claim (`ANNOT_XV_BATCH`, default 8): big
/// enough to amortise the claim, small enough to balance skewed case costs.
fn xv_batch() -> usize {
    env_knob("ANNOT_XV_BATCH", 8)
}

/// Drives `total` independent oracle cases (identified by their index) in
/// parallel batches over a scoped thread pool.  A panicking case (a failed
/// assertion) propagates out of the scope and fails the test with its
/// original message.
fn run_cases(total: usize, check: impl Fn(u64) + Sync) {
    let threads = xv_threads();
    let batch = xv_batch().max(1);
    if threads <= 1 || total <= batch {
        for case in 0..total {
            check(case as u64);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(total.div_ceil(batch));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let start = next.fetch_add(batch, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    for case in start..(start + batch).min(total) {
                        check(case as u64);
                    }
                })
            })
            .collect();
        // Re-raise the first worker panic with its original payload (a bare
        // scope exit would replace the assertion message with the generic
        // "a scoped thread panicked").
        let mut panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });
}

// ---------------------------------------------------------------------------
// Random polynomials (seeded replacement for the old proptest strategies)
// ---------------------------------------------------------------------------

/// A random polynomial over up to 3 variables, ≤ 3 monomials of degree ≤ 2,
/// coefficients ≤ 3 — the same distribution the old proptest strategy used.
fn random_polynomial(rng: &mut StdRng) -> Polynomial {
    let num_terms = rng.gen_range(0..4usize);
    Polynomial::from_terms((0..num_terms).map(|_| {
        let num_vars = rng.gen_range(0..3usize);
        let vars = (0..num_vars).map(|_| Var(rng.gen_range(0..3u32)));
        (Monomial::from_vars(vars), rng.gen_range(1..4u64))
    }))
}

// Full randomized load, or a handful of cases per property under Miri —
// the interpreter is orders of magnitude slower and hunts undefined
// behaviour, not statistical coverage.  `quick_mode_covers_every_semiring`
// pins the quick counts above zero.
#[cfg(not(miri))]
const POLY_CASES: usize = 128;
#[cfg(miri)]
const POLY_CASES: usize = 4;

/// Prop. 3.2: evaluation into N (bag semantics) is a semiring morphism.
#[test]
fn evaluation_is_a_morphism() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..POLY_CASES {
        let p = random_polynomial(&mut rng);
        let q = random_polynomial(&mut rng);
        let (a, b, c) = (
            rng.gen_range(0..4u64),
            rng.gen_range(0..4u64),
            rng.gen_range(0..4u64),
        );
        let valuation = move |v: Var| {
            Natural(match v.0 {
                0 => a,
                1 => b,
                _ => c,
            })
        };
        let ep = eval_polynomial::<Natural>(&p, &valuation);
        let eq = eval_polynomial::<Natural>(&q, &valuation);
        assert_eq!(
            eval_polynomial::<Natural>(&p.plus(&q), &valuation),
            ep.add(&eq)
        );
        assert_eq!(
            eval_polynomial::<Natural>(&p.times(&q), &valuation),
            ep.mul(&eq)
        );
    }
}

/// Polynomial arithmetic is commutative/associative/distributive.
#[test]
fn polynomial_ring_laws() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..POLY_CASES {
        let p = random_polynomial(&mut rng);
        let q = random_polynomial(&mut rng);
        let r = random_polynomial(&mut rng);
        assert_eq!(p.plus(&q), q.plus(&p));
        assert_eq!(p.times(&q), q.times(&p));
        assert_eq!(p.plus(&q).plus(&r), p.plus(&q.plus(&r)));
        assert_eq!(p.times(&q).times(&r), p.times(&q.times(&r)));
        assert_eq!(p.times(&q.plus(&r)), p.times(&q).plus(&p.times(&r)));
    }
}

/// Every CQ-admissible polynomial is homogeneous and its coefficients are
/// bounded by the number of orderings of the monomial (Sec. 4.5).
#[test]
fn admissible_polynomials_are_homogeneous() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    let mut admissible_seen = 0usize;
    for _ in 0..4 * POLY_CASES {
        let p = random_polynomial(&mut rng);
        if is_cq_admissible(&p) {
            admissible_seen += 1;
            assert!(p.is_homogeneous(), "admissible but inhomogeneous: {:?}", p);
            for (m, c) in p.terms() {
                assert!(c <= m.num_orderings());
            }
        }
    }
    assert!(
        admissible_seen > 0,
        "sample never hit an admissible polynomial"
    );
}

/// The tropical order is a preorder compatible with addition (positivity
/// requirement (C4) at the polynomial level).
#[test]
fn tropical_order_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..POLY_CASES {
        let p = random_polynomial(&mut rng);
        let q = random_polynomial(&mut rng);
        let r = random_polynomial(&mut rng);
        assert!(leq_min_plus(&p, &p));
        if leq_min_plus(&p, &q) {
            assert!(leq_min_plus(&p.plus(&r), &q.plus(&r)));
        }
    }
}

// ---------------------------------------------------------------------------
// The oracle harness: deciders vs brute-force semantics
// ---------------------------------------------------------------------------

// Per-semiring randomized oracle load; quick mode under Miri (see
// `POLY_CASES`).
#[cfg(not(miri))]
const CQ_CASES_PER_SEMIRING: usize = 110;
#[cfg(miri)]
const CQ_CASES_PER_SEMIRING: usize = 2;
#[cfg(not(miri))]
const UCQ_CASES_PER_SEMIRING: usize = 40;
#[cfg(miri)]
const UCQ_CASES_PER_SEMIRING: usize = 1;

/// The Miri quick mode must still exercise every property and every
/// semiring: a case count of zero would turn a suite into a silent no-op
/// while looking green in CI.  (Compiled in both modes; the constants
/// differ, the floor does not.)
#[test]
#[allow(clippy::assertions_on_constants)] // pinning cfg(miri) constants is the point
fn quick_mode_covers_every_semiring() {
    assert!(POLY_CASES >= 1, "polynomial properties disabled");
    assert!(CQ_CASES_PER_SEMIRING >= 1, "CQ oracle disabled");
    assert!(UCQ_CASES_PER_SEMIRING >= 1, "UCQ oracle disabled");
}

fn cq_pair(seed: u64) -> (Cq, Cq) {
    let mut generator = QueryGenerator::new(GeneratorConfig {
        num_atoms: 2,
        shape: QueryShape::Random,
        var_pool: 3,
        num_relations: 1,
        seed,
        ..Default::default()
    });
    (generator.cq(), generator.cq())
}

fn ucq_pair(seed: u64) -> (Ucq, Ucq) {
    let mut generator = QueryGenerator::new(GeneratorConfig {
        num_atoms: 2,
        shape: QueryShape::Random,
        var_pool: 3,
        num_relations: 1,
        seed,
        ..Default::default()
    });
    (generator.ucq(2), generator.ucq(2))
}

/// Checks one decider answer against the brute-force search, in the
/// directions valid for any sample/domain bound:
///
/// * `Contained` ⇒ no semantic counterexample exists (soundness);
/// * a semantic counterexample ⇒ the answer is not `Contained`, and for
///   semirings with an exact criterion (`exact = true`) it must be
///   `NotContained`.
fn check_against_oracle(
    name: &str,
    case: &str,
    decision: &Decision,
    counterexample_found: bool,
    exact: bool,
) {
    if exact {
        assert!(
            decision.decided().is_some(),
            "{name}: exact criterion returned Unknown on {case}"
        );
    }
    if decision.answer == Verdict::Contained {
        assert!(
            !counterexample_found,
            "{name}: decider claims containment via {} but brute force \
             refutes it on {case}",
            decision.method
        );
    }
    if counterexample_found && exact {
        assert_eq!(
            decision.decided(),
            Some(false),
            "{name}: semantic counterexample exists but decider did not refute {case}"
        );
    }
}

fn oracle_cq<K: ClassifiedSemiring>(exact: bool) {
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    let name = K::class_profile().name;
    run_cases(CQ_CASES_PER_SEMIRING, |seed| {
        let (q1, q2) = cq_pair(3000 + seed);
        let answer = decide_cq::<K>(&q1, &q2);
        let refuted = find_counterexample_cq::<K>(&q1, &q2, &config).is_some();
        check_against_oracle(name, &format!("{} vs {}", q1, q2), &answer, refuted, exact);
    });
}

fn oracle_ucq<K: ClassifiedSemiring>(exact: bool) {
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    let name = K::class_profile().name;
    run_cases(UCQ_CASES_PER_SEMIRING, |seed| {
        let (u1, u2) = ucq_pair(5000 + seed);
        let answer = decide_ucq::<K>(&u1, &u2);
        let refuted = find_counterexample_ucq::<K>(&u1, &u2, &config).is_some();
        let case = format!("{} vs {} (seed {})", u1, u2, 5000 + seed);
        check_against_oracle(name, &case, &answer, refuted, exact);
    });
}

#[test]
fn oracle_cq_bool() {
    oracle_cq::<Bool>(true);
}

#[test]
fn oracle_cq_lineage() {
    oracle_cq::<Lineage>(true);
}

#[test]
fn oracle_cq_tropical() {
    oracle_cq::<Tropical>(true);
}

#[test]
fn oracle_cq_viterbi() {
    // Viterbi is decided through its −ln isomorphism to T⁺ (the small-model
    // procedure with the min-plus polynomial order).
    oracle_cq::<Viterbi>(true);
}

#[test]
fn oracle_cq_why() {
    oracle_cq::<Why>(true);
}

#[test]
fn oracle_cq_nat_poly() {
    oracle_cq::<NatPoly>(true);
}

#[test]
fn oracle_cq_natural() {
    // Bag semantics is the open row of Table 1: the decider may answer
    // Unknown, but its Contained/NotContained answers must still agree with
    // the semantics.
    oracle_cq::<Natural>(false);
}

#[test]
fn oracle_ucq_bool() {
    oracle_ucq::<Bool>(true);
}

#[test]
fn oracle_ucq_lineage() {
    oracle_ucq::<Lineage>(true);
}

#[test]
fn oracle_ucq_tropical() {
    oracle_ucq::<Tropical>(true);
}

#[test]
fn oracle_ucq_viterbi() {
    oracle_ucq::<Viterbi>(true);
}

#[test]
fn oracle_ucq_why() {
    oracle_ucq::<Why>(true);
}

#[test]
fn oracle_ucq_nat_poly() {
    oracle_ucq::<NatPoly>(true);
}

#[test]
fn oracle_ucq_natural() {
    oracle_ucq::<Natural>(false);
}

// ---------------------------------------------------------------------------
// DUCQ oracle cases: the incremental (EvalState-driven) search vs the
// one-shot reference
// ---------------------------------------------------------------------------

fn ducq_pair(seed: u64) -> (Ducq, Ducq) {
    let mut generator = QueryGenerator::new(GeneratorConfig {
        num_atoms: 2,
        shape: QueryShape::Random,
        var_pool: 3,
        num_relations: 1,
        seed,
        ..Default::default()
    });
    (generator.ducq(2), generator.ducq(2))
}

/// Random DUCQs (unions of CCQs, whose disjuncts carry `u ≠ v` disequality
/// constraints): the prefix-memoized oracle — which maintains both queries'
/// all-outputs maps through `EvalState::for_ducq` — must agree with the
/// naive reference oracle — which re-evaluates every instance one-shot via
/// `eval_ducq_all_outputs` — on the existence of a counterexample, and
/// every reported counterexample must replay under `eval_ducq`.
///
/// No syntactic decider covers DUCQs, so unlike the CQ/UCQ harnesses above
/// this is a two-oracle differential; it runs over one representative
/// semiring per dispatch class and order shape of the search (scalar
/// direct: `B`, `N`, `T⁺`; heap-carrying factorized: `Why[X]`, `N[X]`).
///
/// `cases` is scaled per semiring so the whole suite respects the ~3 s
/// debug wall budget on the single-core CI builder — the naive reference
/// enumerates `Σ C(n,k)·sᵏ` instances per case, so semirings with many
/// sample elements (`Why[X]`: 6 non-zero) pay an order of magnitude more
/// per case than `B` (1 non-zero).
fn oracle_ducq<K: Semiring>(cases: usize) {
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    run_cases(cases, |seed| {
        let (d1, d2) = ducq_pair(11_000 + seed);
        let memoized = find_counterexample_ducq::<K>(&d1, &d2, &config);
        let naive = find_counterexample_ducq_naive::<K>(&d1, &d2, &config);
        assert_eq!(
            memoized.is_some(),
            naive.is_some(),
            "{}: incremental and one-shot DUCQ oracles disagree on {} vs {} (seed {})",
            K::NAME,
            d1,
            d2,
            11_000 + seed
        );
        for ce in [memoized, naive].into_iter().flatten() {
            let lhs = eval_ducq(&d1, &ce.instance, &ce.tuple);
            let rhs = eval_ducq(&d2, &ce.instance, &ce.tuple);
            assert_eq!(ce.lhs, lhs, "{}: reported lhs is not Q₁ᴵ(t)", K::NAME);
            assert_eq!(ce.rhs, rhs, "{}: reported rhs is not Q₂ᴵ(t)", K::NAME);
            assert!(
                !lhs.leq(&rhs),
                "{}: reported DUCQ violation does not replay",
                K::NAME
            );
        }
    });
}

#[test]
fn oracle_ducq_bool() {
    oracle_ducq::<Bool>(24);
}

#[test]
fn oracle_ducq_natural() {
    oracle_ducq::<Natural>(18);
}

#[test]
fn oracle_ducq_tropical() {
    oracle_ducq::<Tropical>(18);
}

#[test]
fn oracle_ducq_why() {
    oracle_ducq::<Why>(10);
}

#[test]
fn oracle_ducq_nat_poly() {
    oracle_ducq::<NatPoly>(14);
}

/// On the exact-criterion semiring whose brute-force search is complete on
/// these bounds (`B`: ⊕-idempotent, two-element carrier, domain as large as
/// the variable pools involved), the decider and the oracle agree *in both
/// directions* — full agreement, not just the sound directions.
#[test]
fn oracle_cq_bool_is_two_sided() {
    let config = BruteForceConfig {
        domain_size: 3,
        max_support: 4,
        ..Default::default()
    };
    let mut disagreements_settled = 0usize;
    for seed in 0..60u64 {
        let (q1, q2) = cq_pair(7000 + seed);
        let answer = decide_cq::<Bool>(&q1, &q2).decided().expect("B is exact");
        let refuted = find_counterexample_cq::<Bool>(&q1, &q2, &config).is_some();
        assert_eq!(
            answer, !refuted,
            "B: decider and complete brute force disagree on {} vs {}",
            q1, q2
        );
        if !answer {
            disagreements_settled += 1;
        }
    }
    // The workload must exercise both verdicts for the test to mean much.
    assert!(disagreements_settled > 0);
    assert!(disagreements_settled < 60);
}

// ---------------------------------------------------------------------------
// Random CQ workloads retained from the seed suite
// ---------------------------------------------------------------------------

/// Random CQ workloads: a query is always equivalent to its complete
/// description (Q ≡_K ⟨Q⟩) on random instances, for an idempotent and a
/// non-idempotent semiring.
#[test]
fn complete_description_equivalence_on_random_queries() {
    for seed in 0..30u64 {
        let mut generator = QueryGenerator::new(GeneratorConfig {
            num_atoms: 2 + (seed % 2) as usize,
            shape: QueryShape::Random,
            var_pool: 3,
            num_relations: 1,
            seed,
            ..Default::default()
        });
        let q = generator.cq();
        let description = complete_description_cq(&q);
        let instance: Instance<Natural> = generator.instance(3, 5);
        let direct = eval_boolean_cq(&q, &instance);
        let via_description = eval_ducq(&description, &instance, &vec![]);
        assert_eq!(direct, via_description, "Q ≢ ⟨Q⟩ for {}", q);

        let tropical: Instance<Tropical> =
            instance.map_annotations(&|n| Tropical::Finite(n.0.min(20)));
        assert_eq!(
            eval_boolean_cq(&q, &tropical),
            eval_ducq(&description, &tropical, &vec![])
        );
    }
}

/// The universal bounds of the paper on random workloads:
/// `Q₂ ⤖ Q₁ ⇒ Q₁ ⊆_K Q₂` and `Q₁ ⊆_K Q₂ ⇒ Q₂ → Q₁` for every semiring.
#[test]
fn universal_bounds_on_random_queries() {
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    for seed in 100..130u64 {
        let (q1, q2) = cq_pair(seed);
        // Sufficiency of bijective homomorphisms, tested over Why[X]
        // (idempotent) and N (non-idempotent).
        if kinds::exists_bijective_hom(&q2, &q1) {
            assert!(find_counterexample_cq::<Why>(&q1, &q2, &config).is_none());
            assert!(find_counterexample_cq::<Natural>(&q1, &q2, &config).is_none());
        }
        // Necessity of plain homomorphisms: if no homomorphism Q2 → Q1
        // exists there must be a small Boolean counterexample (the canonical
        // instance of Q1 fits in the search bounds for these workloads).
        if !kinds::exists_hom(&q2, &q1) {
            assert!(
                find_counterexample_cq::<Bool>(&q1, &q2, &config).is_some() || q1.num_vars() > 2,
                "no homomorphism but no small Boolean counterexample: {} vs {}",
                q1,
                q2
            );
        }
    }
}

/// Evaluating a CQ over the canonical instance of another CQ realises the
/// homomorphism criterion: Q2 → Q1 iff Q2 evaluates to a non-zero polynomial
/// over ⟦Q1⟧ with the identity output tuple (Chandra–Merlin via provenance).
#[test]
fn canonical_instances_capture_homomorphisms() {
    for seed in 200..240u64 {
        let (q1, q2) = cq_pair(seed);
        let canonical = CanonicalInstance::of_cq(&q1);
        let value = eval_cq(&q2, canonical.instance(), &canonical.identity_tuple(&q2));
        let hom = kinds::exists_hom(&q2, &q1);
        // Both queries here are Boolean, so the identity tuple is empty and
        // the equivalence is exact.
        assert_eq!(hom, !value.polynomial().is_zero(), "{} vs {}", q1, q2);
    }
}
