//! Reproduction of the worked examples of the paper (experiment E3 of
//! DESIGN.md): Example 4.6, Example 5.4, Example 5.7 and Example 5.20,
//! plus the CQ-admissibility examples of Sec. 4.5 (experiment E4).

use annot_core::brute_force::{find_counterexample_cq, find_counterexample_ucq, BruteForceConfig};
use annot_core::decide::{decide_cq, decide_ucq};
use annot_core::small_model::{cq_contained_small_model, ucq_contained_small_model};
use annot_core::ucq::{bijective, covering, local, surjective};
use annot_hom::kinds;
use annot_polynomial::admissible::is_cq_admissible;
use annot_polynomial::{leq_min_plus, Polynomial, Var};
use annot_query::complete::complete_description_cq;
use annot_query::eval::eval_boolean_cq;
use annot_query::{parser, CanonicalInstance, Cq, Schema, Ucq};
use annot_semiring::{Bool, BoundedNat, Lineage, NatPoly, Natural, Tropical, Why};

fn parse_cq(schema: &mut Schema, s: &str) -> Cq {
    parser::parse_cq(schema, s).unwrap()
}

fn parse_ucq(schema: &mut Schema, s: &str) -> Ucq {
    parser::parse_ucq(schema, s).unwrap()
}

/// Example 4.6: Q1 = ∃u,v,w R(u,v),R(u,w), Q2 = ∃u,v R(u,v),R(u,v).
/// There is no injective homomorphism Q2 ↪ Q1, yet Q1 ⊆_{T⁺} Q2.
#[test]
fn example_4_6_tropical_containment_without_injective_hom() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q1 = parse_cq(&mut schema, "Q() :- R(u, v), R(u, w)");
    let q2 = parse_cq(&mut schema, "Q() :- R(u, v), R(u, v)");

    // No injective homomorphism from Q2 to Q1 (Sec. 4.2).
    assert!(!kinds::exists_injective_hom(&q2, &q1));
    // Yet the small-model procedure proves T⁺-containment (Sec. 4.6).
    assert!(cq_contained_small_model::<Tropical>(&q1, &q2));
    assert_eq!(decide_cq::<Tropical>(&q1, &q2).decided(), Some(true));
    // Brute-force semantic check agrees (no counterexample over T⁺) …
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 4,
        ..Default::default()
    };
    assert!(find_counterexample_cq::<Tropical>(&q1, &q2, &config).is_none());
    // … while the same containment FAILS over bag semantics and N[X].
    assert!(find_counterexample_cq::<Natural>(&q1, &q2, &config).is_some());
    assert_eq!(decide_cq::<NatPoly>(&q1, &q2).decided(), Some(false));
}

/// Example 4.6 (continued): the complete description ⟨Q1⟩ has five CCQs, and
/// over the canonical instance ⟦Q11⟧ the two evaluations are the polynomials
/// x₁² + 2x₁x₂ + x₂² and x₁² + x₂², which are =_{T⁺}.
#[test]
fn example_4_6_canonical_polynomials() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q1 = parse_cq(&mut schema, "Q() :- R(u, v), R(u, w)");
    let q2 = parse_cq(&mut schema, "Q() :- R(u, v), R(u, v)");

    let description = complete_description_cq(&q1);
    assert_eq!(description.len(), 5); // Q11 … Q15 in the paper

    // The all-distinct CCQ is Q11; evaluate both queries over ⟦Q11⟧.
    let q11 = description
        .disjuncts()
        .iter()
        .find(|c| c.cq().num_vars() == 3)
        .expect("Q11 present");
    let canonical = CanonicalInstance::of_ccq(q11);
    let p1 = eval_boolean_cq(&q1, canonical.instance());
    let p2 = eval_boolean_cq(&q2, canonical.instance());

    let x1 = Polynomial::var(Var(0));
    let x2 = Polynomial::var(Var(1));
    assert_eq!(p1.polynomial(), &x1.plus(&x2).pow(2));
    assert_eq!(p2.polynomial(), &x1.pow(2).plus(&x2.pow(2)));
    // x₁² + 2x₁x₂ + x₂² =_{T⁺} x₁² + x₂² (the paper's displayed equation).
    assert!(leq_min_plus(p1.polynomial(), p2.polynomial()));
    assert!(leq_min_plus(p2.polynomial(), p1.polynomial()));
}

/// Example 5.4: over T⁺ the UCQ Q1 = {∃v R(v),S(v)} is contained in
/// Q2 = {∃v R(v),R(v) ; ∃v S(v),S(v)}, but neither member of Q2 contains Q11
/// on its own — the local method of Prop. 5.1 is not complete outside C_hom.
#[test]
fn example_5_4_local_method_fails_for_tropical() {
    let mut schema = Schema::with_relations([("R", 1), ("S", 1)]);
    let q1 = parse_ucq(&mut schema, "Q() :- R(v), S(v)");
    let q2 = parse_ucq(&mut schema, "Q() :- R(v), R(v) ; Q() :- S(v), S(v)");

    // Member-wise containment fails for both members of Q2.
    let q11 = &q1.disjuncts()[0];
    for member in q2.disjuncts() {
        assert!(!cq_contained_small_model::<Tropical>(q11, member));
    }
    // The union containment nevertheless holds.
    assert!(ucq_contained_small_model::<Tropical>(&q1, &q2));
    assert_eq!(decide_ucq::<Tropical>(&q1, &q2).decided(), Some(true));
    // Brute force over T⁺ agrees.
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 4,
        ..Default::default()
    };
    assert!(find_counterexample_ucq::<Tropical>(&q1, &q2, &config).is_none());
    // Over set semantics the containment also holds (homomorphism from each
    // member of Q2 … to Q11), but over N[X] it fails.
    assert!(local::contained_chom(&q1, &q2));
    assert!(!bijective::counting_infinite(&q1, &q2));
}

/// Example 5.7: Q1 ⊆_{N[X]} Q2 is decided by the counting criterion ↪_∞ on
/// complete descriptions, although no member-wise assignment of distinct
/// bijective witnesses exists.
#[test]
fn example_5_7_counting_criterion() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q1 = parse_ucq(
        &mut schema,
        "Q() :- R(u, v), R(u, u) ; Q() :- R(u, v), R(v, v)",
    );
    let q2 = parse_ucq(
        &mut schema,
        "Q() :- R(u, v), R(w, w) ; Q() :- R(u, u), R(u, u)",
    );

    // The naive unique-witness sufficient condition fails …
    assert!(!local::sufficient_for_all_semirings(&q1, &q2));
    // … but ↪_∞ holds, so Q1 ⊆_{N[X]} Q2 (Prop. 5.9).
    assert!(bijective::counting_infinite(&q1, &q2));
    assert_eq!(decide_ucq::<NatPoly>(&q1, &q2).decided(), Some(true));
    // Brute-force check over N[X] annotations drawn from the sample space.
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    assert!(find_counterexample_ucq::<NatPoly>(&q1, &q2, &config).is_none());
    // The ↠_∞ criterion (sufficient for bag semantics) holds as well.
    assert!(surjective::unique_surjective(&q1, &q2));
}

/// Example 5.7 (continued): adding another copy of Q22 to Q1 breaks
/// N[X]-containment but keeps containment for offset-2 semirings.
#[test]
fn example_5_7_offsets() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q1 = parse_ucq(
        &mut schema,
        "Q() :- R(u, v), R(u, u) ; Q() :- R(u, v), R(v, v) ; Q() :- R(u, u), R(u, u)",
    );
    let q2 = parse_ucq(
        &mut schema,
        "Q() :- R(u, v), R(w, w) ; Q() :- R(u, u), R(u, u)",
    );
    // ⟨Q'1⟩ now has three CCQs isomorphic to Q'22, ⟨Q2⟩ only two.
    assert!(!bijective::counting_infinite(&q1, &q2));
    assert_eq!(decide_ucq::<NatPoly>(&q1, &q2).decided(), Some(false));
    // For semirings of offset 2 the third copy is redundant (k·x = 2·x for
    // k ≥ 2), so the ↪₂ criterion holds …
    assert!(bijective::counting_offset(&q1, &q2, 2));
    // … and indeed the brute-force check over B₂ (saturating bags, offset 2)
    // finds no counterexample, while over N[X] it does.
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    assert!(find_counterexample_ucq::<BoundedNat<2>>(&q1, &q2, &config).is_none());
    assert!(find_counterexample_ucq::<NatPoly>(&q1, &q2, &config).is_some());
}

/// Example 5.20: for semirings in S_hcov the covering of a member of Q1 may
/// need *several* members of Q2 simultaneously.
#[test]
fn example_5_20_covering_needs_both_members() {
    let mut schema = Schema::with_relations([("R", 1), ("S", 1)]);
    let q1 = parse_ucq(&mut schema, "Q() :- R(v), S(v)");
    let q2 = parse_ucq(&mut schema, "Q() :- R(v) ; Q() :- S(v)");

    // Neither member alone covers Q11 …
    for member in q2.disjuncts() {
        assert!(!kinds::homomorphically_covers(member, &q1.disjuncts()[0]));
    }
    // … but the union does (Q2 ⇉₁ Q1).
    assert!(covering::covering1(&q1, &q2));
    // The containment indeed holds over Lin[X] (∈ C¹_hcov): no counterexample.
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 4,
        ..Default::default()
    };
    assert!(find_counterexample_ucq::<Lineage>(&q1, &q2, &config).is_none());
    assert_eq!(decide_ucq::<Lineage>(&q1, &q2).decided(), Some(true));
    // Over set semantics it holds too, over N[X] it does not.
    assert!(find_counterexample_ucq::<Bool>(&q1, &q2, &config).is_none());
    assert!(!bijective::counting_infinite(&q1, &q2));
}

/// Sec. 4.5: the CQ-admissible polynomial examples.
#[test]
fn section_4_5_admissibility_examples() {
    let x = Polynomial::var(Var(0));
    let y = Polynomial::var(Var(1));
    // Admissible: x², 2xy, x + y.
    assert!(is_cq_admissible(&x.pow(2)));
    assert!(is_cq_admissible(&x.times(&y).plus(&x.times(&y))));
    assert!(is_cq_admissible(&x.plus(&y)));
    // Not admissible: 2x, x² + y, x² + xy + y².
    assert!(!is_cq_admissible(&x.plus(&x)));
    assert!(!is_cq_admissible(&x.pow(2).plus(&y)));
    assert!(!is_cq_admissible(
        &x.pow(2).plus(&x.times(&y)).plus(&y.pow(2))
    ));
    // Every evaluation of a CQ over a canonical instance is admissible.
    let mut schema = Schema::with_relations([("R", 2)]);
    let q1 = parse_cq(&mut schema, "Q() :- R(u, v), R(u, w)");
    let canonical = CanonicalInstance::of_cq(&q1);
    let p = eval_boolean_cq(&q1, canonical.instance());
    assert!(is_cq_admissible(p.polynomial()));
}

/// Example 5.4's schema also illustrates Thm. 5.2: over B the member-wise
/// homomorphism criterion is complete, and agrees with brute force.
#[test]
fn theorem_5_2_local_homomorphism_is_exact_for_set_semantics() {
    let mut schema = Schema::with_relations([("R", 1), ("S", 1)]);
    let q1 = parse_ucq(&mut schema, "Q() :- R(v), S(v)");
    let q2 = parse_ucq(&mut schema, "Q() :- R(v) ; Q() :- S(v)");
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 4,
        ..Default::default()
    };
    let criterion = local::contained_chom(&q1, &q2);
    let semantic = find_counterexample_ucq::<Bool>(&q1, &q2, &config).is_none();
    assert_eq!(criterion, semantic);
    assert_eq!(decide_ucq::<Bool>(&q1, &q2).decided(), Some(criterion));
    // The reverse direction: Q2 is NOT contained in Q1 over B (R alone does
    // not imply R ∧ S), and the criterion agrees.
    let criterion_rev = local::contained_chom(&q2, &q1);
    let semantic_rev = find_counterexample_ucq::<Bool>(&q2, &q1, &config).is_none();
    assert!(!criterion_rev);
    assert_eq!(criterion_rev, semantic_rev);
}

/// Why[X] / Trio[X] (Thm. 4.14): surjective homomorphisms characterise
/// containment; checked against brute force on the paper's Example 4.6 pair.
#[test]
fn why_provenance_surjective_criterion() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q1 = parse_cq(&mut schema, "Q() :- R(u, v), R(u, w)");
    let q2 = parse_cq(&mut schema, "Q() :- R(u, v), R(u, v)");
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    // Q1 ⊆_{Why[X]} Q2 fails: no surjective homomorphism, and brute force
    // finds a counterexample.
    assert!(!kinds::exists_surjective_hom(&q2, &q1));
    assert!(find_counterexample_cq::<Why>(&q1, &q2, &config).is_some());
    // Q2 ⊆_{Why[X]} Q1 holds: a surjective homomorphism exists and brute
    // force finds no counterexample.
    assert!(kinds::exists_surjective_hom(&q1, &q2));
    assert!(find_counterexample_cq::<Why>(&q2, &q1, &config).is_none());
    assert_eq!(decide_cq::<Why>(&q2, &q1).decided(), Some(true));
}
