//! Experiment E2 (DESIGN.md): the UCQ half of Table 1.
//!
//! Random UCQ workloads; for each class row the criterion is compared with
//! brute-force semantics over small instances (soundness of acceptance, and
//! rejection whenever a semantic counterexample exists).

use annot_core::brute_force::{find_counterexample_ucq, BruteForceConfig};
use annot_core::small_model::ucq_contained_small_model;
use annot_core::ucq::{bijective, covering, local, surjective};
use annot_query::generator::{GeneratorConfig, QueryGenerator, QueryShape};
use annot_query::Ucq;
use annot_semiring::{Bool, BoolPoly, Lineage, NatPoly, Natural, Semiring, Tropical, Why};

fn workload(seed_base: u64, pairs: usize) -> Vec<(Ucq, Ucq)> {
    let mut out = Vec::new();
    for i in 0..pairs {
        let mut generator = QueryGenerator::new(GeneratorConfig {
            num_atoms: 2,
            shape: if i % 2 == 0 {
                QueryShape::Random
            } else {
                QueryShape::Chain
            },
            var_pool: 3,
            num_relations: 1,
            seed: seed_base + i as u64,
            ..Default::default()
        });
        let q1 = generator.ucq(1 + (i % 2));
        let q2 = generator.ucq(2);
        out.push((q1, q2));
    }
    out
}

fn check<K: Semiring>(criterion: &dyn Fn(&Ucq, &Ucq) -> bool, pairs: &[(Ucq, Ucq)], name: &str) {
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    for (q1, q2) in pairs {
        let predicted = criterion(q1, q2);
        let counterexample = find_counterexample_ucq::<K>(q1, q2, &config);
        if predicted {
            assert!(
                counterexample.is_none(),
                "[{}] criterion accepts but semantics refutes\nQ1 = {}\nQ2 = {}",
                name,
                q1,
                q2
            );
        }
        if counterexample.is_some() {
            assert!(
                !predicted,
                "[{}] semantics refutes but criterion accepts\nQ1 = {}\nQ2 = {}",
                name, q1, q2
            );
        }
    }
}

#[test]
fn row_chom_local_homomorphism() {
    let pairs = workload(1000, 8);
    check::<Bool>(&local::contained_chom, &pairs, "C_hom/B (UCQ)");
}

#[test]
fn row_c1hcov_covering() {
    let pairs = workload(2000, 8);
    check::<Lineage>(&covering::covering1, &pairs, "C¹_hcov/Lin[X] (⇉₁)");
}

#[test]
fn row_c1sur_local_surjective() {
    let pairs = workload(3000, 8);
    check::<Why>(&local::contained_c1sur, &pairs, "C¹_sur/Why[X] (↠₁)");
}

#[test]
fn row_c1bi_local_bijective() {
    let pairs = workload(4000, 8);
    check::<BoolPoly>(&local::contained_c1bi, &pairs, "C¹_bi/B[X] (⤖₁)");
}

#[test]
fn row_cinf_bi_counting() {
    let pairs = workload(5000, 6);
    check::<NatPoly>(&bijective::counting_infinite, &pairs, "C^∞_bi/N[X] (↪_∞)");
}

#[test]
fn row_cinf_sur_unique_surjection_is_sound_for_bags() {
    // ↠_∞ is a sufficient condition for N-containment (Cor. 5.16): whenever
    // it accepts, brute force must not find a bag counterexample.
    let pairs = workload(6000, 6);
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    for (q1, q2) in &pairs {
        if surjective::unique_surjective(q1, q2) {
            assert!(
                find_counterexample_ucq::<Natural>(q1, q2, &config).is_none(),
                "↠_∞ accepted but N-containment fails: {} vs {}",
                q1,
                q2
            );
        }
    }
}

#[test]
fn covering2_is_necessary_for_bags() {
    // Cor. 5.23: if Q1 ⊆_N Q2 then ⟨Q2⟩ ⇉₂ ⟨Q1⟩ — equivalently, if ⇉₂ fails
    // then a bag counterexample must exist; we verify the contrapositive
    // statement that acceptance of containment by semantics (no small
    // counterexample AND the sufficient ↠_∞ condition) implies ⇉₂.
    let pairs = workload(7000, 6);
    for (q1, q2) in &pairs {
        if surjective::unique_surjective(q1, q2) {
            assert!(
                covering::covering2(q1, q2),
                "↠_∞ holds (so Q1 ⊆_N Q2) but the necessary ⇉₂ fails: {} vs {}",
                q1,
                q2
            );
        }
    }
}

#[test]
fn row_small_model_tropical_ucq() {
    let pairs = workload(8000, 6);
    let criterion = |q1: &Ucq, q2: &Ucq| ucq_contained_small_model::<Tropical>(q1, q2);
    check::<Tropical>(&criterion, &pairs, "S¹/T⁺ (UCQ small model)");
}

#[test]
fn local_method_is_sound_for_all_idempotent_semirings() {
    // Prop. 5.1: member-wise containment is sufficient for ⊕-idempotent
    // semirings; with the bijective CQ criterion it is sufficient for any
    // semiring.  Check against Lin[X], Why[X] and N[X].
    let pairs = workload(9000, 6);
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 3,
        ..Default::default()
    };
    for (q1, q2) in &pairs {
        if local::contained_c1bi(q1, q2) {
            assert!(find_counterexample_ucq::<NatPoly>(q1, q2, &config).is_none());
            assert!(find_counterexample_ucq::<Why>(q1, q2, &config).is_none());
            assert!(find_counterexample_ucq::<Lineage>(q1, q2, &config).is_none());
        }
    }
}
