//! From-first-principles pins of the symmetry-quotiented oracle walk (PR 9).
//!
//! The production code computes the quotiented instance count with a
//! Burnside/cycle-index closed form ([`quotiented_instance_count`]) and
//! prunes the walk with a lex-minimality test against precomputed slot
//! permutation tables.  This suite rebuilds the orbit profile from scratch —
//! its own slot list (relation order, lexicographic tuples over the `Int`
//! domain), its own `d!` permutation generator, and a direct orbit count
//! over explicit support subsets — and holds three things to it:
//!
//! * the shipped closed form agrees with the independent enumeration;
//! * an irrefutable **direct** walk (scalar `ℕ`) visits exactly
//!   `Σ_{k≤cap} orbits(k)·sᵏ` instances at threads {1, 2, 8};
//! * an irrefutable **factorized** walk (heap-carrying `Lin[X]`, `Why[X]`)
//!   accounts exactly the same closed form at threads {1, 2, 8}.
//!
//! Nothing here imports the oracle's own permutation tables: a bug that
//! warped both the pruning predicate and the closed form the same way would
//! still be caught, because the expected numbers come from this file's own
//! group action.

use annot_core::brute_force::{
    quotiented_instance_count, try_find_counterexample_ucq, BruteForceConfig,
};
use annot_query::{parser, Schema};
use annot_semiring::{Lineage, Natural, Semiring, Why};
use std::collections::HashSet;

/// All permutations of `0..d`, built recursively.
fn permutations(d: usize) -> Vec<Vec<usize>> {
    fn extend(prefix: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
        if prefix.len() == used.len() {
            out.push(prefix.clone());
            return;
        }
        for v in 0..used.len() {
            if !used[v] {
                used[v] = true;
                prefix.push(v);
                extend(prefix, used, out);
                prefix.pop();
                used[v] = false;
            }
        }
    }
    let mut out = Vec::new();
    extend(&mut Vec::new(), &mut vec![false; d], &mut out);
    out
}

/// The orbit profile `orbits(k)` for `k ≤ cap`: the number of orbits of
/// `k`-element slot sets under the domain-permutation action, counted by
/// enumerating every support subset and keeping one canonical (minimal
/// sorted image) representative per orbit.  Slots are abstract
/// `(relation, digit-tuple)` pairs — no oracle internals involved.
fn orbit_profile(rels: &[(&str, usize)], d: usize, cap: usize) -> Vec<u128> {
    let mut slots: Vec<(usize, Vec<usize>)> = Vec::new();
    for (r, &(_, arity)) in rels.iter().enumerate() {
        for code in 0..d.pow(arity as u32) {
            let mut digits = vec![0usize; arity];
            let mut c = code;
            for j in (0..arity).rev() {
                digits[j] = c % d;
                c /= d;
            }
            slots.push((r, digits));
        }
    }
    let n = slots.len();
    assert!(n < 32, "bitmask enumeration needs n < 32");
    let perms = permutations(d);
    let cap = cap.min(n);
    let mut orbits = vec![0u128; cap + 1];
    let mut seen: HashSet<Vec<(usize, Vec<usize>)>> = HashSet::new();
    for mask in 0u32..(1u32 << n) {
        let k = mask.count_ones() as usize;
        if k > cap {
            continue;
        }
        let subset: Vec<&(usize, Vec<usize>)> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| &slots[i])
            .collect();
        let canonical = perms
            .iter()
            .map(|p| {
                let mut image: Vec<(usize, Vec<usize>)> = subset
                    .iter()
                    .map(|(r, digits)| (*r, digits.iter().map(|&x| p[x]).collect()))
                    .collect();
                image.sort();
                image
            })
            .min()
            .expect("the permutation group is never empty");
        if seen.insert(canonical) {
            orbits[k] += 1;
        }
    }
    orbits
}

/// Pins one workload: the shipped closed form and the walk's visit counter
/// against this file's independent orbit enumeration, at every cap up to
/// `max_cap` and thread counts {1, 2, 8}.
fn pin_quotiented_walk<K: Semiring>(
    rels: &[(&str, usize)],
    d: usize,
    query_src: &str,
    max_cap: usize,
) {
    let mut schema = Schema::with_relations(rels.iter().copied());
    let q = parser::parse_ucq(&mut schema, query_src).unwrap();
    let s = K::decisive_samples()
        .into_iter()
        .filter(|k| !k.is_zero())
        .count();
    for cap in 0..=max_cap {
        let orbits = orbit_profile(rels, d, cap);
        let expected: u128 = orbits
            .iter()
            .enumerate()
            .map(|(k, &count)| count * (s as u128).pow(k as u32))
            .sum();
        assert_eq!(
            quotiented_instance_count(&schema, d, s, cap),
            expected,
            "{}: domain {d}, cap {cap}: Burnside closed form disagrees with the \
             independent orbit enumeration",
            K::NAME
        );
        for threads in [1usize, 2, 8] {
            let config = BruteForceConfig {
                domain_size: d,
                max_support: cap,
                threads,
                ..Default::default()
            };
            let outcome = try_find_counterexample_ucq::<K>(&q, &q, &config).unwrap();
            assert!(outcome.counterexample.is_none(), "Q ⊆ Q must hold");
            assert_eq!(
                outcome.stats.instances_visited,
                expected as u64,
                "{}: domain {d}, cap {cap}, threads {threads}: quotiented walk \
                 drifted from the orbit closed form",
                K::NAME
            );
        }
    }
}

/// The permutation generator produces exactly `d!` distinct permutations —
/// the orbit profiles below are only meaningful if the group is complete.
#[test]
fn permutation_generator_is_complete() {
    for d in 1..=4usize {
        let perms = permutations(d);
        let expected: usize = (1..=d).product();
        assert_eq!(perms.len(), expected, "d = {d}");
        let distinct: HashSet<_> = perms.iter().collect();
        assert_eq!(distinct.len(), expected, "d = {d}: duplicates");
    }
}

/// Hand-checked profile: domain 2, one binary relation (4 slots, group of
/// order 2 whose non-identity element is a product of two 2-cycles) gives
/// orbits(k) = 1, 2, 4, 2, 1 — the worked example in the module docs.
#[test]
fn binary_relation_domain_2_profile_is_hand_checked() {
    assert_eq!(orbit_profile(&[("R", 2)], 2, 4), vec![1, 2, 4, 2, 1]);
}

#[test]
fn direct_walk_visits_the_orbit_closed_form_domain_2() {
    pin_quotiented_walk::<Natural>(&[("R", 2)], 2, "Q() :- R(u, v), R(v, w)", 4);
}

#[test]
fn direct_walk_visits_the_orbit_closed_form_domain_3() {
    pin_quotiented_walk::<Natural>(&[("R", 2)], 3, "Q() :- R(u, v), R(v, w)", 3);
}

#[test]
fn factorized_walk_accounts_the_orbit_closed_form_lineage() {
    pin_quotiented_walk::<Lineage>(&[("R", 2)], 2, "Q() :- R(u, v), R(v, w)", 4);
    pin_quotiented_walk::<Lineage>(&[("R", 2)], 3, "Q() :- R(u, v), R(v, w)", 3);
}

#[test]
fn factorized_walk_accounts_the_orbit_closed_form_why() {
    pin_quotiented_walk::<Why>(&[("R", 2)], 2, "Q() :- R(u, v), R(v, w)", 4);
}

#[test]
fn mixed_arity_schema_matches_the_orbit_closed_form() {
    pin_quotiented_walk::<Natural>(&[("R", 2), ("S", 1)], 2, "Q() :- R(u, v), S(v)", 4);
    pin_quotiented_walk::<Lineage>(&[("R", 2), ("S", 1)], 2, "Q() :- R(u, v), S(v)", 4);
}
