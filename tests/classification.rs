//! Experiment E6 (DESIGN.md): the offset hierarchy and empirical
//! classification of the shipped semirings.

use annot_core::brute_force::{find_counterexample_ucq, BruteForceConfig};
use annot_core::classes::{ClassifiedSemiring, CqCriterion, Offset};
use annot_core::classify::classify;
use annot_core::ucq::bijective;
use annot_query::{parser, Schema, Ucq};
use annot_semiring::axioms;
use annot_semiring::{Bool, BoundedNat, Lineage, NatPoly, Natural, Schedule, Tropical, Why};

#[test]
fn offset_hierarchy_of_bounded_bags() {
    assert_eq!(axioms::smallest_offset::<BoundedNat<1>>(10), Some(1));
    assert_eq!(axioms::smallest_offset::<BoundedNat<2>>(10), Some(2));
    assert_eq!(axioms::smallest_offset::<BoundedNat<3>>(10), Some(3));
    assert_eq!(axioms::smallest_offset::<BoundedNat<5>>(10), Some(5));
    assert_eq!(axioms::smallest_offset::<Natural>(10), None);
    // S^k ⊂ S^{k+1}: an offset-2 semiring also satisfies the offset-3 axiom
    // family trivially (k·x = ℓ·x for ℓ ≥ k ≥ 2), reflected here by the
    // *smallest* offset being reported.
    assert_eq!(classify::<BoundedNat<2>>().offset, Offset::Finite(2));
}

#[test]
fn prop_5_19_shcov_semirings_have_offset_at_most_two() {
    // Every ⊗-idempotent semiring has offset ≤ 2 (Prop. 5.19).
    for (mul_idem, offset) in [
        (
            axioms::is_mul_idempotent::<Bool>(),
            axioms::smallest_offset::<Bool>(4),
        ),
        (
            axioms::is_mul_idempotent::<Lineage>(),
            axioms::smallest_offset::<Lineage>(4),
        ),
        (
            axioms::is_mul_idempotent::<BoundedNat<2>>(),
            axioms::smallest_offset::<BoundedNat<2>>(4),
        ),
    ] {
        if mul_idem {
            assert!(matches!(offset, Some(k) if k <= 2));
        }
    }
}

#[test]
fn empirical_and_declared_classifications_are_consistent() {
    assert!(classify::<Bool>().in_c_hom);
    assert_eq!(
        classify::<Bool>().certified_cq_criterion,
        Some(CqCriterion::Homomorphism)
    );
    assert!(classify::<Lineage>().in_s_hcov && !classify::<Lineage>().in_s_in);
    assert!(classify::<Tropical>().in_s_in && !classify::<Tropical>().in_s_hcov);
    assert!(classify::<Schedule>().in_s_sur && !classify::<Schedule>().in_s_in);
    assert!(classify::<Why>().in_s_sur);
    assert!(!classify::<NatPoly>().in_s_sur);
    assert_eq!(
        Tropical::class_profile().cq_criterion,
        CqCriterion::SmallModel
    );
    assert_eq!(
        Natural::class_profile().cq_criterion,
        CqCriterion::OpenProblem
    );
}

/// The ↪_k criteria form a hierarchy in k: accepting for larger k is harder.
#[test]
fn counting_criteria_are_monotone_in_k() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let pairs: Vec<(Ucq, Ucq)> = vec![
        (
            parser::parse_ucq(
                &mut schema,
                "Q() :- R(u, v), R(u, u) ; Q() :- R(u, u), R(u, u) ; Q() :- R(u, u), R(u, u)",
            )
            .unwrap(),
            parser::parse_ucq(
                &mut schema,
                "Q() :- R(u, v), R(w, w) ; Q() :- R(u, u), R(u, u)",
            )
            .unwrap(),
        ),
        (
            parser::parse_ucq(&mut schema, "Q() :- R(u, v)").unwrap(),
            parser::parse_ucq(&mut schema, "Q() :- R(a, b) ; Q() :- R(c, c)").unwrap(),
        ),
    ];
    for (q1, q2) in &pairs {
        for k in 1..=4u64 {
            if bijective::counting_offset(q1, q2, k + 1) {
                assert!(
                    bijective::counting_offset(q1, q2, k),
                    "↪_{} holds but ↪_{} does not for {} vs {}",
                    k + 1,
                    k,
                    q1,
                    q2
                );
            }
        }
        if bijective::counting_infinite(q1, q2) {
            assert!(bijective::counting_offset(q1, q2, 4));
        }
    }
}

/// Offset-k acceptance is semantically sound for B_k on a concrete family.
#[test]
fn offset_acceptance_matches_bounded_bag_semantics() {
    let mut schema = Schema::with_relations([("R", 2)]);
    let q1 = parser::parse_ucq(
        &mut schema,
        "Q() :- R(u, u), R(u, u) ; Q() :- R(u, u), R(u, u) ; Q() :- R(u, u), R(u, u)",
    )
    .unwrap();
    let q2 = parser::parse_ucq(
        &mut schema,
        "Q() :- R(a, a), R(a, a) ; Q() :- R(b, b), R(b, b)",
    )
    .unwrap();
    // Three copies versus two: fails for N[X] (offset ∞), holds for offset 2.
    assert!(!bijective::counting_infinite(&q1, &q2));
    assert!(bijective::counting_offset(&q1, &q2, 2));
    let config = BruteForceConfig {
        domain_size: 2,
        max_support: 2,
        ..Default::default()
    };
    assert!(find_counterexample_ucq::<BoundedNat<2>>(&q1, &q2, &config).is_none());
    assert!(find_counterexample_ucq::<NatPoly>(&q1, &q2, &config).is_some());
    assert!(find_counterexample_ucq::<Natural>(&q1, &q2, &config).is_some());
}
